// Package metrics turns simulation results into the numbers the paper's
// figures report — energy savings over the status quo, state switches
// normalized by the status quo, energy saved per extra switch, false/missed
// switch rates against the Oracle ground truth (§6.3), and session-delay
// statistics (§6.4) — and provides the mergeable streaming aggregates the
// fleet runtime reduces cohorts into.
//
// # Merge semantics
//
// Stream and Histogram are the two mergeable aggregates. Both are designed
// so that folding a million samples into S shard-local aggregates and then
// merging the S partials gives the same answer as one aggregate fed every
// sample:
//
//   - Stream tracks count, mean and the Welford M2 (sum of squared
//     deviations) plus min/max. Merge combines two streams with the
//     parallel-variance update of Chan, Golub & LeVeque, which is exact up
//     to float rounding: a merged stream's mean and variance equal the
//     single-stream values up to the rounding introduced by the merge
//     order. Holding the merge order fixed (as the fleet's shard-ordered
//     reduction does) therefore makes merged moments bit-reproducible.
//   - Histogram is a fixed-bin count array over [Lo, Hi); below-range
//     samples clamp into the first bin and at-or-above-range into the
//     last, so no sample is ever dropped and merged totals are exact
//     integer sums. Merge refuses histograms with different layouts
//     (bounds or bin count) instead of silently misbinning: all shards of
//     a run must share one layout.
//
// Both merges treat the right operand as read-only, which is what lets the
// fleet snapshot partial merges mid-run without corrupting the shard
// accumulators feeding the final reduction.
package metrics
