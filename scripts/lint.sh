#!/usr/bin/env sh
# lint.sh is the single lint entry point, run identically by developers and
# by the CI lint job — so the two can never drift. It runs, in order:
#
#   1. gofmt        (formatting; vendor/ excluded)
#   2. go vet       (stock analyzers)
#   3. rrclint      (the repo's determinism analyzers, via go vet -vettool;
#                    see internal/analysis and docs/architecture.md)
#   4. pkgdoc       (scripts/check_pkgdoc.sh: every internal package documented)
#   5. staticcheck  (pinned)
#   6. govulncheck  (pinned)
#
# Steps 5 and 6 need the network (or a pre-installed binary) to fetch the
# pinned tool. CI exports RRC_LINT_STRICT=1, which makes their absence a
# failure; locally, an offline machine without the binaries skips them
# with a warning so the deterministic gates (1-4) still run everywhere.
set -eu
cd "$(dirname "$0")/.."

STATICCHECK_VERSION="${STATICCHECK_VERSION:-2024.1.1}"
GOVULNCHECK_VERSION="${GOVULNCHECK_VERSION:-v1.1.3}"
strict="${RRC_LINT_STRICT:-0}"

fail=0

echo "==> gofmt"
unformatted=$(gofmt -l ./*.go cmd internal examples)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    fail=1
fi

echo "==> go vet"
go vet ./... || fail=1

echo "==> rrclint (determinism analyzers)"
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
go build -o "$tmpdir/rrclint" ./cmd/rrclint
go vet -vettool="$tmpdir/rrclint" ./... || fail=1

echo "==> package comments"
sh scripts/check_pkgdoc.sh || fail=1

# run_pinned NAME MODULE@VERSION ARGS... — uses an installed binary when
# present (assumed compatible), otherwise `go run module@version` (exact
# pin, needs the network once). Without either, the step is skipped with a
# warning unless strict mode makes that a failure.
run_pinned() {
    name=$1; mod=$2; shift 2
    echo "==> $name"
    if command -v "$name" >/dev/null 2>&1; then
        "$name" "$@" || fail=1
    elif [ "$strict" = "1" ]; then
        go run "$mod" "$@" || fail=1
    else
        echo "warning: $name not installed; skipped (CI enforces it; 'go install $mod' to run locally)" >&2
    fi
}

run_pinned staticcheck "honnef.co/go/tools/cmd/staticcheck@$STATICCHECK_VERSION" ./...
run_pinned govulncheck "golang.org/x/vuln/cmd/govulncheck@$GOVULNCHECK_VERSION" ./...

if [ "$fail" -ne 0 ]; then
    echo "lint: FAILED" >&2
    exit 1
fi
echo "lint: all checks passed"
