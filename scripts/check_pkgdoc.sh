#!/usr/bin/env sh
# check_pkgdoc.sh asserts every internal/* package carries a proper godoc
# package comment: some .go file in the package (conventionally doc.go or
# the lead file) must begin a comment with "// Package <name> ". Run from
# the repository root; exits non-zero listing offenders.
set -eu

fail=0
for dir in internal/*/; do
    pkg=$(basename "$dir")
    if ! grep -l "^// Package $pkg " "$dir"*.go >/dev/null 2>&1; then
        echo "missing package comment: $dir (want '// Package $pkg ...')" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "godoc audit failed: add the package comment (doc.go) to the packages above" >&2
    exit 1
fi
echo "package comments: all internal packages documented"
