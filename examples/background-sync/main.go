// Background-sync: the scenario that motivates MakeActive (§5). A phone
// runs several background applications (IM heartbeats, email sync, news
// polls). MakeIdle alone saves energy but multiplies Idle->Active state
// switches; adding MakeActive batches session starts so several apps share
// one promotion, trading a few seconds of delay (fine for background
// traffic) for status-quo-level signaling.
//
//	go run ./examples/background-sync
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	user := repro.User{
		Name: "background-phone",
		Apps: []repro.AppModel{repro.IM(), repro.Email(), repro.News()},
	}
	tr := user.Generate(7, 4*time.Hour)
	prof := repro.Verizon3G()

	statusQuo, err := repro.Simulate(tr, prof, repro.StatusQuo(), nil, nil)
	if err != nil {
		log.Fatal(err)
	}

	show := func(label string, active repro.ActivePolicy) {
		makeIdle, err := repro.NewMakeIdle(prof)
		if err != nil {
			log.Fatal(err)
		}
		res, err := repro.Simulate(tr, prof, makeIdle, active, nil)
		if err != nil {
			log.Fatal(err)
		}
		line := fmt.Sprintf("%-28s saved %5.1f%%  switches x%.2f",
			label, repro.SavingsPercent(statusQuo, res), repro.SwitchRatio(statusQuo, res))
		if active != nil {
			d := repro.Delays(res.BurstDelays)
			line += fmt.Sprintf("  mean delay %.1fs median %.1fs",
				d.Mean.Seconds(), d.Median.Seconds())
		}
		fmt.Println(line)
	}

	fmt.Printf("%d packets over %v; status quo: %.1f J, %d switches\n\n",
		len(tr), tr.Duration().Round(time.Minute), statusQuo.TotalJ(), statusQuo.Promotions)
	show("MakeIdle alone", nil)
	show("MakeIdle + MakeActive-Fix", repro.NewFixedDelay(tr, prof, time.Second))
	show("MakeIdle + MakeActive-Learn", repro.NewLearnedDelay())
}
