// Service-client: drive the simulation service end to end over the /v1
// API. The example starts an in-process rrcsimd-equivalent server on an
// ephemeral localhost port (so it is runnable standalone), then talks to
// it purely over HTTP exactly as an external client would: discover all
// three axis registries via GET /v1/policies, /v1/profiles and
// /v1/workloads, submit a scheme × profile grid job (MakeIdle+learned
// MakeActive vs a 2-second fixed tail, on Verizon 3G vs a
// parameterized-LTE what-if, every cell replaying the same streamed
// cohort), follow the NDJSON progress stream as shard-merged partials
// arrive, fetch the final per-cell summaries as JSON, and resubmit the
// same spec to show the fingerprint cache answering instantly with
// byte-identical bytes.
//
// Against a real daemon, replace the in-process listener with its address:
//
//	go run ./cmd/rrcsimd -addr :8080 &
//	go run ./examples/service-client -addr localhost:8080
//
//	go run ./examples/service-client
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"

	"repro/internal/jobs"
	"repro/internal/report"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "", "address of a running rrcsimd (empty = start one in-process)")
	flag.Parse()

	base := *addr
	if base == "" {
		base = startInProcess()
	}
	url := "http://" + base

	// 1. Discover all three axis spaces: every registered policy, carrier
	// profile and cohort family with their parameter schemas, straight
	// from the registries.
	var policies struct {
		Demote []struct {
			Name   string            `json:"name"`
			Params []json.RawMessage `json:"params"`
		} `json:"demote"`
	}
	if err := json.Unmarshal(fetch(url+"/v1/policies"), &policies); err != nil {
		log.Fatal(err)
	}
	fmt.Print("discovered demote policies:")
	for _, p := range policies.Demote {
		fmt.Printf(" %s(%d knobs)", p.Name, len(p.Params))
	}
	fmt.Println()
	var profiles struct {
		Profiles []struct {
			Name   string            `json:"name"`
			Params []json.RawMessage `json:"params"`
		} `json:"profiles"`
	}
	if err := json.Unmarshal(fetch(url+"/v1/profiles"), &profiles); err != nil {
		log.Fatal(err)
	}
	fmt.Print("discovered profiles:")
	for _, p := range profiles.Profiles {
		fmt.Printf(" %s(%d knobs)", p.Name, len(p.Params))
	}
	fmt.Println()
	var workloads struct {
		Cohorts []struct {
			Name string `json:"name"`
		} `json:"cohorts"`
	}
	if err := json.Unmarshal(fetch(url+"/v1/workloads"), &workloads); err != nil {
		log.Fatal(err)
	}
	fmt.Print("discovered cohort families:")
	for _, c := range workloads.Cohorts {
		fmt.Printf(" %s", c.Name)
	}
	fmt.Println()

	// 2. Submit a grid: two schemes × two profiles (the measured Verizon
	// 3G row and an LTE what-if with a 5-second timer) over one streamed
	// 200-user diurnal cohort — 4 cells in one job.
	spec := `{"seed": 42, "schemes": [
		{"policy": {"name": "makeidle"}, "active": {"name": "learn"}},
		{"policy": {"name": "fixedtail", "params": {"wait": "2s"}}}
	], "profiles": [
		{"name": "verizon-3g"},
		{"name": "verizon-lte", "params": {"t1": "5s"}}
	], "cohorts": [
		{"name": "study-3g", "params": {"users": 200, "duration": "2h"}}
	]}`
	st := submit(url, spec)
	fmt.Printf("submitted %s (state %s, fingerprint %s...)\n",
		st.ID, st.State, st.Fingerprint[:12])

	// 3. Follow the progress stream: one NDJSON line per shard batch,
	// carrying merged partial aggregates.
	streamProgress(url, st.ID)

	// 4. Fetch the final per-cell summaries as JSON (and CSV, for
	// plotting tools).
	coldJSON := fetch(url + "/v1/jobs/" + st.ID + "/result")
	var grid report.GridStats
	if err := json.Unmarshal(coldJSON, &grid); err != nil {
		log.Fatal(err)
	}
	for _, cell := range grid.Cells {
		s := cell.Summary.Schemes[cell.Scheme]
		fmt.Printf("%-28s on %-20s %d users, mean %.1f J/user, mean savings %.1f%%\n",
			cell.Scheme, cell.Profile, s.EnergyJ.N, s.EnergyJ.Mean, s.SavingsPct.Mean)
	}
	csv := fetch(url + "/v1/jobs/" + st.ID + "/result?format=csv")
	fmt.Printf("CSV header: %s\n", strings.SplitN(string(csv), "\n", 2)[0])

	// 5. Resubmit the identical sweep: the fingerprint cache answers
	// without replaying anything, byte-identical to the cold run.
	warm := submit(url, spec)
	if !warm.CacheHit {
		log.Fatalf("expected a cache hit, got %+v", warm)
	}
	warmJSON := fetch(url + "/v1/jobs/" + warm.ID + "/result")
	fmt.Printf("resubmission %s served from cache: byte-identical=%t\n",
		warm.ID, bytes.Equal(coldJSON, warmJSON))
}

// startInProcess boots the service on an ephemeral port and returns its
// address — the same wiring cmd/rrcsimd does, minus the flags and signals.
func startInProcess() string {
	manager := jobs.NewManager(jobs.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, server.New(manager))
	fmt.Printf("started in-process service on %s\n", ln.Addr())
	return ln.Addr().String()
}

func submit(url, spec string) jobs.Status {
	resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		log.Fatalf("submit: %s: %s", resp.Status, body)
	}
	var st jobs.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	return st
}

func streamProgress(url, id string) {
	resp, err := http.Get(url + "/v1/jobs/" + id + "/stream")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev server.StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s shards %3d/%3d  users %4d/%4d",
			ev.State, ev.Progress.DoneShards, ev.Progress.Shards,
			ev.Progress.DoneJobs, ev.Progress.TotalJobs)
		for name, p := range ev.Partial {
			fmt.Printf("  [%s: %.1f J/user, %.1f%% saved]", name, p.EnergyMeanJ, p.SavingsPctMean)
		}
		fmt.Println()
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}

func fetch(url string) []byte {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		log.Fatalf("GET %s: %s: %s", url, resp.Status, body)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return b
}
