// Service-client: drive the simulation service end to end over the /v1
// API. The example starts an in-process rrcsimd-equivalent server on an
// ephemeral localhost port (so it is runnable standalone), then talks to
// it purely over HTTP exactly as an external client would: discover the
// policy registry via GET /v1/policies, submit a two-scheme sweep job
// (MakeIdle+learned MakeActive vs a 2-second fixed tail, both replayed
// against the same streamed cohort), follow the NDJSON progress stream as
// shard-merged partials arrive, fetch the final per-scheme summaries as
// JSON, and resubmit the same spec to show the fingerprint cache
// answering instantly with byte-identical bytes.
//
// Against a real daemon, replace the in-process listener with its address:
//
//	go run ./cmd/rrcsimd -addr :8080 &
//	go run ./examples/service-client -addr localhost:8080
//
//	go run ./examples/service-client
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"

	"repro/internal/jobs"
	"repro/internal/report"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "", "address of a running rrcsimd (empty = start one in-process)")
	flag.Parse()

	base := *addr
	if base == "" {
		base = startInProcess()
	}
	url := "http://" + base

	// 1. Discover the policy space: every registered policy with its
	// parameter schema, straight from the registry.
	var catalog struct {
		Demote []struct {
			Name   string `json:"name"`
			Params []struct {
				Name    string `json:"name"`
				Kind    string `json:"kind"`
				Default string `json:"default"`
			} `json:"params"`
		} `json:"demote"`
	}
	if err := json.Unmarshal(fetch(url+"/v1/policies"), &catalog); err != nil {
		log.Fatal(err)
	}
	fmt.Print("discovered demote policies:")
	for _, p := range catalog.Demote {
		fmt.Printf(" %s(%d knobs)", p.Name, len(p.Params))
	}
	fmt.Println()

	// 2. Submit a sweep: 200 diurnal users, 2 h each, replayed under two
	// schemes — MakeIdle + learned MakeActive, and a 2-second fixed tail
	// — aggregated per scheme in one job.
	spec := `{"users": 200, "seed": 42, "duration": "2h", "schemes": [
		{"policy": {"name": "makeidle"}, "active": {"name": "learn"}},
		{"policy": {"name": "fixedtail", "params": {"wait": "2s"}}}
	]}`
	st := submit(url, spec)
	fmt.Printf("submitted %s (state %s, fingerprint %s...)\n",
		st.ID, st.State, st.Fingerprint[:12])

	// 3. Follow the progress stream: one NDJSON line per shard batch,
	// carrying merged partial aggregates.
	streamProgress(url, st.ID)

	// 4. Fetch the final per-scheme summaries as JSON (and CSV, for
	// plotting tools).
	coldJSON := fetch(url + "/v1/jobs/" + st.ID + "/result")
	var stats report.SummaryStats
	if err := json.Unmarshal(coldJSON, &stats); err != nil {
		log.Fatal(err)
	}
	for name, s := range stats.Schemes {
		fmt.Printf("%-28s %d users, mean %.1f J/user, mean savings %.1f%%\n",
			name, s.EnergyJ.N, s.EnergyJ.Mean, s.SavingsPct.Mean)
	}
	csv := fetch(url + "/v1/jobs/" + st.ID + "/result?format=csv")
	fmt.Printf("CSV header: %s\n", strings.SplitN(string(csv), "\n", 2)[0])

	// 5. Resubmit the identical sweep: the fingerprint cache answers
	// without replaying anything, byte-identical to the cold run.
	warm := submit(url, spec)
	if !warm.CacheHit {
		log.Fatalf("expected a cache hit, got %+v", warm)
	}
	warmJSON := fetch(url + "/v1/jobs/" + warm.ID + "/result")
	fmt.Printf("resubmission %s served from cache: byte-identical=%t\n",
		warm.ID, bytes.Equal(coldJSON, warmJSON))
}

// startInProcess boots the service on an ephemeral port and returns its
// address — the same wiring cmd/rrcsimd does, minus the flags and signals.
func startInProcess() string {
	manager := jobs.NewManager(jobs.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, server.New(manager))
	fmt.Printf("started in-process service on %s\n", ln.Addr())
	return ln.Addr().String()
}

func submit(url, spec string) jobs.Status {
	resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		log.Fatalf("submit: %s: %s", resp.Status, body)
	}
	var st jobs.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	return st
}

func streamProgress(url, id string) {
	resp, err := http.Get(url + "/v1/jobs/" + id + "/stream")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev server.StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s shards %3d/%3d  users %4d/%4d",
			ev.State, ev.Progress.DoneShards, ev.Progress.Shards,
			ev.Progress.DoneJobs, ev.Progress.TotalJobs)
		for name, p := range ev.Partial {
			fmt.Printf("  [%s: %.1f J/user, %.1f%% saved]", name, p.EnergyMeanJ, p.SavingsPctMean)
		}
		fmt.Println()
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}

func fetch(url string) []byte {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		log.Fatalf("GET %s: %s: %s", url, resp.Status, body)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return b
}
