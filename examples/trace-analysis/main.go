// Trace-analysis: the offline analysis the paper runs before designing its
// algorithms (§2, §4.1). Given a packet trace — here generated, but the
// same code reads tcpdump pcap files via internal/trace — print the
// inter-arrival CDF around the interesting region, the burst structure,
// the carrier's t_threshold, and the Oracle bound on what fast dormancy
// could save without delaying anything.
//
//	go run ./examples/trace-analysis
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	user := repro.Verizon3GUsers()[2]
	tr := user.Generate(21, 4*time.Hour)
	prof := repro.Verizon3G()
	threshold := repro.Threshold(prof)

	fmt.Printf("trace: %s, %d packets over %v\n", user.Name, len(tr), tr.Duration().Round(time.Minute))
	out, in := tr.Bytes()
	fmt.Printf("bytes: %d up / %d down\n\n", out, in)

	// Inter-arrival CDF at the decision-relevant points.
	fmt.Println("inter-arrival distribution:")
	for _, q := range []float64{0.50, 0.75, 0.90, 0.95, 0.99} {
		fmt.Printf("  p%-3.0f %12v\n", q*100, tr.QuantileGap(q).Round(time.Millisecond))
	}
	fmt.Printf("  t_threshold (%s): %v\n\n", prof.Name, threshold.Round(time.Millisecond))

	// Burst structure: what MakeActive would operate on.
	stats := tr.Summarize(time.Second)
	fmt.Printf("bursts (1s segmentation): %d, mean %.1f packets/burst\n\n",
		stats.Bursts, stats.MeanBurstLen)

	// How many gaps exceed the threshold — each is a demotion opportunity.
	opportunities := 0
	var reclaimable time.Duration
	for _, g := range tr.InterArrivals() {
		if g > threshold {
			opportunities++
			tail := g
			if tail > prof.Tail() {
				tail = prof.Tail()
			}
			reclaimable += tail
		}
	}
	fmt.Printf("gaps above t_threshold: %d (radio-tail time at stake: %v)\n\n",
		opportunities, reclaimable.Round(time.Second))

	// The Oracle bound: the ceiling for any no-delay policy.
	statusQuo, err := repro.Simulate(tr, prof, repro.StatusQuo(), nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	oracle, err := repro.Simulate(tr, prof, repro.NewOracle(prof), nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("status quo: %8.1f J\n", statusQuo.TotalJ())
	fmt.Printf("oracle:     %8.1f J  (ceiling: %.1f%% could be saved without delaying traffic)\n",
		oracle.TotalJ(), repro.SavingsPercent(statusQuo, oracle))
}
