// Carrier-compare: the §6.5 cross-carrier analysis as one grid job. The
// example starts an in-process service, submits a single /v1 job whose
// profile axis lists all four Table 2 carriers — plus one parameterized
// what-if, Verizon LTE with its inactivity timer halved — and whose
// scheme axis runs MakeIdle, then prints one row per grid cell. Carriers
// with long inactivity timers (Verizon 3G's 9.8 s t1) leave the most tail
// energy on the table, and the t1=5.1s what-if shows how much of LTE's
// tail cost is the timer setting itself.
//
//	go run ./examples/carrier-compare
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"

	"repro/internal/jobs"
	"repro/internal/report"
	"repro/internal/server"
)

func main() {
	manager := jobs.NewManager(jobs.Config{})
	defer manager.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, server.New(manager))
	url := "http://" + ln.Addr().String()

	// One grid job: 1 scheme × 5 profiles × 1 cohort = 5 cells, every cell
	// replaying the identical streamed 60-user cohort.
	spec := `{"seed": 11, "schemes": [
		{"policy": {"name": "makeidle"}}
	], "profiles": [
		{"name": "tmobile-3g"},
		{"name": "att-hspa+"},
		{"name": "verizon-3g"},
		{"name": "verizon-lte"},
		{"name": "verizon-lte", "params": {"t1": "5.1s"}}
	], "cohorts": [
		{"name": "study-3g", "params": {"users": 60, "duration": "2h"}}
	]}`

	resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		log.Fatal(err)
	}
	var st jobs.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("submitted grid %s (fingerprint %s...)\n", st.ID, st.Fingerprint[:12])

	job, ok := manager.Get(st.ID)
	if !ok {
		log.Fatalf("job %s not registered", st.ID)
	}
	<-job.Done()

	res, err := http.Get(url + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		log.Fatal(err)
	}
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	var grid report.GridStats
	if err := json.Unmarshal(body, &grid); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-22s %10s %9s %10s\n", "carrier", "J/user", "saved", "sw-ratio")
	for _, cell := range grid.Cells {
		s := cell.Summary.Schemes[cell.Scheme]
		fmt.Printf("%-22s %9.1fJ %8.1f%% %10.2f\n",
			cell.Profile, s.EnergyJ.Mean, s.SavingsPct.Mean, s.SwitchRatio.Mean)
	}
}
