// Carrier-compare: replay one user's traffic against all four measured
// carrier profiles (Table 2) and compare how much MakeIdle saves on each —
// the §6.5 cross-carrier analysis in miniature. Carriers with long
// inactivity timers (Verizon 3G's 9.8 s t1) leave the most tail energy on
// the table.
//
//	go run ./examples/carrier-compare
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	user := repro.Verizon3GUsers()[0]
	tr := user.Generate(11, 4*time.Hour)

	fmt.Printf("user %s: %d packets over %v\n\n", user.Name, len(tr), tr.Duration().Round(time.Minute))
	fmt.Printf("%-14s %10s %10s %9s %12s\n", "carrier", "statusquo", "MakeIdle", "saved", "t_threshold")

	for _, prof := range repro.Carriers() {
		statusQuo, err := repro.Simulate(tr, prof, repro.StatusQuo(), nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		makeIdle, err := repro.NewMakeIdle(prof)
		if err != nil {
			log.Fatal(err)
		}
		res, err := repro.Simulate(tr, prof, makeIdle, nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %9.1fJ %9.1fJ %8.1f%% %11.2fs\n",
			prof.Name, statusQuo.TotalJ(), res.TotalJ(),
			repro.SavingsPercent(statusQuo, res), repro.Threshold(prof).Seconds())
	}
}
