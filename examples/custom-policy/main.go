// Custom-policy: implement your own demotion policy against the public
// DemotePolicy interface and benchmark it against MakeIdle and the Oracle.
//
// The example policy is an exponentially-weighted-moving-average heuristic:
// it demotes after twice the EWMA of recent gaps, capped at the profile
// threshold — simpler than MakeIdle's expected-energy maximization, and
// measurably worse, which is rather the point.
//
//	go run ./examples/custom-policy
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

// ewmaPolicy demotes after 2x the EWMA of observed inter-arrivals.
type ewmaPolicy struct {
	ewma  time.Duration
	cap   time.Duration
	seen  int
	alpha float64
}

func newEWMA(cap time.Duration) *ewmaPolicy {
	return &ewmaPolicy{cap: cap, alpha: 0.2}
}

func (p *ewmaPolicy) Name() string { return "EWMA-2x" }

func (p *ewmaPolicy) Observe(gap time.Duration) {
	if p.seen == 0 {
		p.ewma = gap
	} else {
		p.ewma = time.Duration(p.alpha*float64(gap) + (1-p.alpha)*float64(p.ewma))
	}
	p.seen++
}

func (p *ewmaPolicy) Decide(time.Duration) time.Duration {
	if p.seen < 10 {
		return 1 << 62 // effectively policy.Never: defer to timers
	}
	w := 2 * p.ewma
	if w > p.cap {
		w = p.cap
	}
	return w
}

func (p *ewmaPolicy) Reset() { p.ewma = 0; p.seen = 0 }

func main() {
	user := repro.Verizon3GUsers()[1]
	tr := user.Generate(5, 4*time.Hour)
	prof := repro.Verizon3G()

	statusQuo, err := repro.Simulate(tr, prof, repro.StatusQuo(), nil, nil)
	if err != nil {
		log.Fatal(err)
	}

	makeIdle, err := repro.NewMakeIdle(prof)
	if err != nil {
		log.Fatal(err)
	}
	policies := []repro.DemotePolicy{
		newEWMA(repro.Threshold(prof)),
		makeIdle,
		repro.NewOracle(prof),
	}

	fmt.Printf("%d packets; status quo %.1f J\n\n", len(tr), statusQuo.TotalJ())
	for _, d := range policies {
		res, err := repro.Simulate(tr, prof, d, nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %8.1f J  saved %5.1f%%  switches x%.2f\n",
			d.Name(), res.TotalJ(),
			repro.SavingsPercent(statusQuo, res), repro.SwitchRatio(statusQuo, res))
	}
}
