// Quickstart: generate a synthetic email workload, run the paper's MakeIdle
// algorithm against the deployed status quo on Verizon 3G, and print the
// energy saved.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	// Two hours of a background email client (sync every ~5 minutes).
	tr := repro.GenerateApp(repro.Email(), 42, 2*time.Hour)
	prof := repro.Verizon3G()

	// Baseline: the carrier's inactivity timers as deployed.
	statusQuo, err := repro.Simulate(tr, prof, repro.StatusQuo(), nil, nil)
	if err != nil {
		log.Fatal(err)
	}

	// MakeIdle: predict burst ends, trigger fast dormancy early.
	makeIdle, err := repro.NewMakeIdle(prof)
	if err != nil {
		log.Fatal(err)
	}
	res, err := repro.Simulate(tr, prof, makeIdle, nil, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload:   %d packets over %v\n", len(tr), tr.Duration().Round(time.Minute))
	fmt.Printf("status quo: %6.1f J  (%d promotions)\n", statusQuo.TotalJ(), statusQuo.Promotions)
	fmt.Printf("MakeIdle:   %6.1f J  (%d promotions)\n", res.TotalJ(), res.Promotions)
	fmt.Printf("saved:      %5.1f%%\n", repro.SavingsPercent(statusQuo, res))
}
