// Cell-signaling: the paper's §8 future-work question — what does a base
// station see when a whole cell of phones runs fast dormancy? This example
// attaches a fleet of MakeIdle devices to one simulated cell and compares
// an always-grant station against a rate-limited one (Release-8
// network-controlled fast dormancy), showing the trade between signaling
// load and device energy.
//
//	go run ./examples/cell-signaling
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/basestation"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/workload"
)

func main() {
	prof := power.Verizon3G
	users := workload.Verizon3GUsers()

	const fleet = 12
	build := func() []basestation.Device {
		var devices []basestation.Device
		for i := 0; i < fleet; i++ {
			u := users[i%len(users)]
			mi, err := policy.NewMakeIdle(prof)
			if err != nil {
				log.Fatal(err)
			}
			devices = append(devices, basestation.Device{
				Name:   fmt.Sprintf("%s-%d", u.Name, i),
				Trace:  u.Generate(int64(i+1)*104729, 2*time.Hour),
				Demote: mi,
			})
		}
		return devices
	}

	for _, adm := range []basestation.AdmissionPolicy{
		basestation.AlwaysGrant{},
		basestation.RateLimit{MaxPerWindow: 40},
		basestation.RateLimit{MaxPerWindow: 20},
	} {
		res, err := basestation.Simulate(prof, build(), adm, time.Minute)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s signals %5d  peak %3d/min  denied %4d  fleet energy %8.1f J\n",
			res.Admission, res.TotalSignals, res.PeakSignals(), res.TotalDenied, res.TotalEnergyJ())
	}
	fmt.Println("\nTighter admission budgets cap the cell's signaling peaks; every")
	fmt.Println("denied dormancy leaves one radio in its tail, so fleet energy rises.")
}
