// benchdump measures the canonical grid benchmarks (the same computations
// as BenchmarkGridSweep, BenchmarkGridSweepWide and
// BenchmarkGridSweepSharedCohort, via the jobs.Bench*GridSpec
// constructors) and either records the results as a committed
// baseline or checks the current tree against one. It exists so the perf
// trajectory is a tracked artifact:
//
//	go run ./cmd/benchdump -out BENCH_grid.json     # refresh the baseline
//	go run ./cmd/benchdump -check BENCH_grid.json   # CI regression gate
//
// The baseline file is a JSON array with one record per registered
// benchmark (a legacy single-object file still parses as a one-entry
// baseline). -check validates every entry: it fails (exit 1) when any
// benchmark's throughput falls below -min-throughput times its baseline or
// its allocations per cell exceed -max-allocs times it. A slow or noisy
// machine can depress throughput without any code regression, so failed
// checks re-measure up to -retries times and pass if any attempt is within
// bounds; allocations are scheduling-independent, so their bound stays
// tight. Baselines embed each benchmark spec's fingerprint — a check
// against a baseline recorded for a different grid refuses to compare and
// asks for a refresh instead.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/jobs"
)

// baseline is one committed benchmark record. Field names are the file
// format; don't rename without migrating BENCH_*.json.
type baseline struct {
	Bench           string  `json:"bench"`
	SpecFingerprint string  `json:"spec_fingerprint"`
	GoVersion       string  `json:"go_version"`
	Date            string  `json:"date"`
	Iterations      int     `json:"iterations"`
	CellsPerSec     float64 `json:"cells_per_sec"`
	AllocsPerCell   float64 `json:"allocs_per_cell"`
	NsPerOp         float64 `json:"ns_per_op"`
}

// benchDef registers one measurable benchmark: the grid it replays, the
// cell count per submission, and the manager configuration — mirroring the
// in-tree benchmark of the same name so the committed baseline and `go
// test -bench` always measure the same computation.
type benchDef struct {
	name  string
	spec  func() jobs.Spec
	cells int
	cfg   jobs.Config
}

var benches = []benchDef{
	{
		name:  "GridSweep",
		spec:  jobs.BenchGridSpec,
		cells: jobs.BenchGridCells,
		cfg:   jobs.Config{Runners: 1, CacheSize: -1, CellCacheSize: -1},
	},
	{
		name:  "GridSweepWide",
		spec:  jobs.BenchWideGridSpec,
		cells: jobs.BenchWideGridCells,
		cfg:   jobs.Config{Runners: 1, CacheSize: -1, CellCacheSize: -1},
	},
	{
		// The shared-cohort sweep runs with the trace cache at its default
		// budget (the daemon's default configuration): the baseline tracks
		// the memoized, generate-once throughput.
		name:  "GridSweepSharedCohort",
		spec:  jobs.BenchSharedCohortGridSpec,
		cells: jobs.BenchSharedCohortGridCells,
		cfg:   jobs.Config{Runners: 1, CacheSize: -1, CellCacheSize: -1},
	},
}

func main() {
	var (
		out     = flag.String("out", "", "measure and write the baseline JSON to this file")
		check   = flag.String("check", "", "measure and compare against the baseline JSON in this file")
		measure = flag.Duration("measure", 2*time.Second, "minimum measuring time per attempt")
		warmup  = flag.Int("warmup", 3, "warm-up submissions before measuring")
		retries = flag.Int("retries", 3, "re-measure attempts before a -check failure is final")
		minTpt  = flag.Float64("min-throughput", 0.8, "fail -check below this fraction of baseline cells/sec")
		maxAll  = flag.Float64("max-allocs", 2.0, "fail -check above this multiple of baseline allocs/cell")
	)
	flag.Parse()
	if (*out == "") == (*check == "") {
		fmt.Fprintln(os.Stderr, "benchdump: exactly one of -out or -check is required")
		flag.Usage()
		os.Exit(2)
	}

	if *out != "" {
		var records []baseline
		for _, def := range benches {
			cur, err := def.run(*measure, *warmup)
			if err != nil {
				fatal(err)
			}
			report("measured", cur)
			records = append(records, cur)
		}
		b, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
		return
	}

	bases, err := readBaselines(*check)
	if err != nil {
		fatal(err)
	}
	failed := false
	for _, base := range bases {
		def, ok := lookup(base.Bench)
		if !ok {
			fatal(fmt.Errorf("%s records unknown benchmark %q; refresh it with -out", *check, base.Bench))
		}
		if fp := def.spec().Fingerprint(); base.SpecFingerprint != fp {
			fatal(fmt.Errorf("%s entry %s was recorded for a different benchmark grid (fingerprint %.12s, current %.12s); refresh it with -out",
				*check, base.Bench, base.SpecFingerprint, fp))
		}
		fmt.Printf("== %s\n", base.Bench)
		report("baseline", base)
		if !checkBench(def, base, *measure, *warmup, *retries, *minTpt, *maxAll) {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// checkBench measures def up to retries times and reports whether any
// attempt stays within bounds of base.
func checkBench(def benchDef, base baseline, measure time.Duration, warmup, retries int, minTpt, maxAll float64) bool {
	attempts := retries
	if attempts < 1 {
		attempts = 1
	}
	for attempt := 1; ; attempt++ {
		cur, err := def.run(measure, warmup)
		if err != nil {
			fatal(err)
		}
		report(fmt.Sprintf("attempt %d", attempt), cur)
		failures := compare(base, cur, minTpt, maxAll)
		if len(failures) == 0 {
			fmt.Printf("ok: %.1fx throughput, %.2fx allocs vs baseline\n",
				cur.CellsPerSec/base.CellsPerSec, cur.AllocsPerCell/base.AllocsPerCell)
			return true
		}
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "benchdump: %s: %s\n", def.name, f)
		}
		if attempt >= attempts {
			fmt.Fprintf(os.Stderr, "benchdump: %s: regression persisted across %d attempts\n", def.name, attempts)
			return false
		}
		fmt.Fprintln(os.Stderr, "benchdump: retrying")
	}
}

// readBaselines parses the baseline file: a JSON array of records, or the
// legacy single-object format (treated as a one-entry baseline).
func readBaselines(path string) ([]baseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if bytes.HasPrefix(bytes.TrimSpace(raw), []byte("{")) {
		var one baseline
		if err := json.Unmarshal(raw, &one); err != nil {
			return nil, fmt.Errorf("parse %s: %w", path, err)
		}
		return []baseline{one}, nil
	}
	var many []baseline
	if err := json.Unmarshal(raw, &many); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if len(many) == 0 {
		return nil, fmt.Errorf("%s holds no baseline records; refresh it with -out", path)
	}
	return many, nil
}

func lookup(name string) (benchDef, bool) {
	for _, def := range benches {
		if def.name == name {
			return def, true
		}
	}
	return benchDef{}, false
}

// compare returns the bound violations of cur against base, empty when the
// check passes.
func compare(base, cur baseline, minTpt, maxAll float64) []string {
	var failures []string
	if floor := minTpt * base.CellsPerSec; cur.CellsPerSec < floor {
		failures = append(failures, fmt.Sprintf(
			"throughput regressed: %.0f cells/sec < %.0f (%.0f%% of baseline %.0f)",
			cur.CellsPerSec, floor, 100*minTpt, base.CellsPerSec))
	}
	if ceil := maxAll * base.AllocsPerCell; cur.AllocsPerCell > ceil {
		failures = append(failures, fmt.Sprintf(
			"allocations regressed: %.1f allocs/cell > %.1f (%.1fx baseline %.1f)",
			cur.AllocsPerCell, ceil, maxAll, base.AllocsPerCell))
	}
	return failures
}

// run executes the benchmark grid through a fresh manager — the same setup
// as the in-tree benchmark of the same name — for at least the requested
// measuring time, and returns the record.
func (def benchDef) run(measure time.Duration, warmup int) (baseline, error) {
	m := jobs.NewManager(def.cfg)
	defer m.Close()
	spec := def.spec()

	for i := 0; i < warmup; i++ {
		if err := submit(m, spec, def.cells); err != nil {
			return baseline{}, err
		}
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	iters := 0
	for time.Since(start) < measure {
		if err := submit(m, spec, def.cells); err != nil {
			return baseline{}, err
		}
		iters++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	cells := float64(def.cells * iters)
	return baseline{
		Bench:           def.name,
		SpecFingerprint: spec.Fingerprint(),
		GoVersion:       runtime.Version(),
		Date:            time.Now().UTC().Format("2006-01-02"),
		Iterations:      iters,
		CellsPerSec:     cells / elapsed.Seconds(),
		AllocsPerCell:   float64(after.Mallocs-before.Mallocs) / cells,
		NsPerOp:         float64(elapsed.Nanoseconds()) / float64(iters),
	}, nil
}

// submit runs one grid job to completion and verifies its shape.
func submit(m *jobs.Manager, spec jobs.Spec, cells int) error {
	job, err := m.Submit(spec)
	if err != nil {
		return err
	}
	<-job.Done()
	if err := job.Err(); err != nil {
		return err
	}
	if n := len(job.Result().Cells); n != cells {
		return fmt.Errorf("grid produced %d cells, want %d", n, cells)
	}
	return nil
}

func report(label string, b baseline) {
	fmt.Printf("%-10s %8.0f cells/sec  %6.1f allocs/cell  %.2fms/op  (%d iters, %s, %s)\n",
		label+":", b.CellsPerSec, b.AllocsPerCell, b.NsPerOp/1e6, b.Iterations, b.GoVersion, b.Date)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdump:", err)
	os.Exit(1)
}
