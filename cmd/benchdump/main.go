// benchdump measures the canonical grid-sweep benchmark (the same
// computation as BenchmarkGridSweep, via jobs.BenchGridSpec) and either
// records the result as a committed baseline or checks the current tree
// against one. It exists so the perf trajectory is a tracked artifact:
//
//	go run ./cmd/benchdump -out BENCH_grid.json     # refresh the baseline
//	go run ./cmd/benchdump -check BENCH_grid.json   # CI regression gate
//
// -check fails (exit 1) when throughput falls below -min-throughput times
// the baseline or allocations per cell exceed -max-allocs times it. A slow
// or noisy machine can depress throughput without any code regression, so
// failed checks re-measure up to -retries times and pass if any attempt is
// within bounds; allocations are scheduling-independent, so their bound
// stays tight. Baselines embed the benchmark spec's fingerprint — a check
// against a baseline recorded for a different grid refuses to compare and
// asks for a refresh instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/jobs"
)

// baseline is the committed benchmark record. Field names are the file
// format; don't rename without migrating BENCH_*.json.
type baseline struct {
	Bench           string  `json:"bench"`
	SpecFingerprint string  `json:"spec_fingerprint"`
	GoVersion       string  `json:"go_version"`
	Date            string  `json:"date"`
	Iterations      int     `json:"iterations"`
	CellsPerSec     float64 `json:"cells_per_sec"`
	AllocsPerCell   float64 `json:"allocs_per_cell"`
	NsPerOp         float64 `json:"ns_per_op"`
}

func main() {
	var (
		out     = flag.String("out", "", "measure and write the baseline JSON to this file")
		check   = flag.String("check", "", "measure and compare against the baseline JSON in this file")
		measure = flag.Duration("measure", 2*time.Second, "minimum measuring time per attempt")
		warmup  = flag.Int("warmup", 3, "warm-up submissions before measuring")
		retries = flag.Int("retries", 3, "re-measure attempts before a -check failure is final")
		minTpt  = flag.Float64("min-throughput", 0.8, "fail -check below this fraction of baseline cells/sec")
		maxAll  = flag.Float64("max-allocs", 2.0, "fail -check above this multiple of baseline allocs/cell")
	)
	flag.Parse()
	if (*out == "") == (*check == "") {
		fmt.Fprintln(os.Stderr, "benchdump: exactly one of -out or -check is required")
		flag.Usage()
		os.Exit(2)
	}

	if *out != "" {
		cur, err := run(*measure, *warmup)
		if err != nil {
			fatal(err)
		}
		report("measured", cur)
		b, err := json.MarshalIndent(cur, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
		return
	}

	raw, err := os.ReadFile(*check)
	if err != nil {
		fatal(err)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("parse %s: %w", *check, err))
	}
	if fp := jobs.BenchGridSpec().Fingerprint(); base.SpecFingerprint != fp {
		fatal(fmt.Errorf("%s was recorded for a different benchmark grid (fingerprint %.12s, current %.12s); refresh it with -out",
			*check, base.SpecFingerprint, fp))
	}
	report("baseline", base)

	attempts := *retries
	if attempts < 1 {
		attempts = 1
	}
	var cur baseline
	for attempt := 1; ; attempt++ {
		cur, err = run(*measure, *warmup)
		if err != nil {
			fatal(err)
		}
		report(fmt.Sprintf("attempt %d", attempt), cur)
		failures := compare(base, cur, *minTpt, *maxAll)
		if len(failures) == 0 {
			fmt.Printf("ok: %.0fx throughput, %.2fx allocs vs baseline\n",
				cur.CellsPerSec/base.CellsPerSec, cur.AllocsPerCell/base.AllocsPerCell)
			return
		}
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "benchdump: %s\n", f)
		}
		if attempt >= attempts {
			fmt.Fprintf(os.Stderr, "benchdump: regression persisted across %d attempts\n", attempts)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "benchdump: retrying")
	}
}

// compare returns the bound violations of cur against base, empty when the
// check passes.
func compare(base, cur baseline, minTpt, maxAll float64) []string {
	var failures []string
	if floor := minTpt * base.CellsPerSec; cur.CellsPerSec < floor {
		failures = append(failures, fmt.Sprintf(
			"throughput regressed: %.0f cells/sec < %.0f (%.0f%% of baseline %.0f)",
			cur.CellsPerSec, floor, 100*minTpt, base.CellsPerSec))
	}
	if ceil := maxAll * base.AllocsPerCell; cur.AllocsPerCell > ceil {
		failures = append(failures, fmt.Sprintf(
			"allocations regressed: %.1f allocs/cell > %.1f (%.1fx baseline %.1f)",
			cur.AllocsPerCell, ceil, maxAll, base.AllocsPerCell))
	}
	return failures
}

// run executes the benchmark grid through a fresh manager — one runner,
// result and cell caches disabled, exactly BenchmarkGridSweep's setup — for
// at least the requested measuring time, and returns the record.
func run(measure time.Duration, warmup int) (baseline, error) {
	m := jobs.NewManager(jobs.Config{Runners: 1, CacheSize: -1, CellCacheSize: -1})
	defer m.Close()
	spec := jobs.BenchGridSpec()

	for i := 0; i < warmup; i++ {
		if err := submit(m, spec); err != nil {
			return baseline{}, err
		}
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	iters := 0
	for time.Since(start) < measure {
		if err := submit(m, spec); err != nil {
			return baseline{}, err
		}
		iters++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	cells := float64(jobs.BenchGridCells * iters)
	return baseline{
		Bench:           "GridSweep",
		SpecFingerprint: spec.Fingerprint(),
		GoVersion:       runtime.Version(),
		Date:            time.Now().UTC().Format("2006-01-02"),
		Iterations:      iters,
		CellsPerSec:     cells / elapsed.Seconds(),
		AllocsPerCell:   float64(after.Mallocs-before.Mallocs) / cells,
		NsPerOp:         float64(elapsed.Nanoseconds()) / float64(iters),
	}, nil
}

// submit runs one grid job to completion and verifies its shape.
func submit(m *jobs.Manager, spec jobs.Spec) error {
	job, err := m.Submit(spec)
	if err != nil {
		return err
	}
	<-job.Done()
	if err := job.Err(); err != nil {
		return err
	}
	if n := len(job.Result().Cells); n != jobs.BenchGridCells {
		return fmt.Errorf("grid produced %d cells, want %d", n, jobs.BenchGridCells)
	}
	return nil
}

func report(label string, b baseline) {
	fmt.Printf("%-10s %8.0f cells/sec  %6.1f allocs/cell  %.2fms/op  (%d iters, %s, %s)\n",
		label+":", b.CellsPerSec, b.AllocsPerCell, b.NsPerOp/1e6, b.Iterations, b.GoVersion, b.Date)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdump:", err)
	os.Exit(1)
}
