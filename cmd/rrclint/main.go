// Command rrclint is the repo's determinism lint suite packaged as a go vet
// tool. It speaks the unitchecker protocol, so it composes with the build
// cache and vet's diagnostics plumbing:
//
//	go build -o /tmp/rrclint ./cmd/rrclint
//	go vet -vettool=/tmp/rrclint ./...
//
// Run a single analyzer by naming it (vet semantics — naming any analyzer
// disables the rest): go vet -vettool=/tmp/rrclint -detrange ./...
// scripts/lint.sh wraps the build-and-run so developers and CI invoke the
// identical gate. See internal/analysis for the analyzer suite.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/analysis"
)

func main() {
	unitchecker.Main(analysis.All()...)
}
