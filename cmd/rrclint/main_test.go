package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestBinaryRegistersEveryAnalyzer builds the real vettool and asserts its
// `help` output lists exactly the analyzers internal/analysis.All()
// returns — the end-to-end registration guard: an analyzer dropped from
// main.go (or a stale binary wiring) fails here even though the package
// still compiles.
func TestBinaryRegistersEveryAnalyzer(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "rrclint")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	out, err := exec.Command(bin, "help").CombinedOutput()
	if err != nil {
		t.Fatalf("rrclint help: %v\n%s", err, out)
	}
	help := string(out)
	_, registered, ok := strings.Cut(help, "Registered analyzers:")
	if !ok {
		t.Fatalf("no 'Registered analyzers:' section in help output:\n%s", help)
	}
	registered, _, _ = strings.Cut(registered, "By default")
	for _, a := range analysis.All() {
		if !strings.Contains(registered, "\n    "+a.Name+" ") {
			t.Errorf("analyzer %q not listed by the built binary", a.Name)
		}
	}
}
