// Command rrcsim replays packet traces against a carrier profile under a
// chosen radio-control policy and prints the energy/signaling report.
//
// Usage:
//
//	tracegen -app Email -o email.trc
//	rrcsim -trace email.trc -carrier "Verizon 3G" -policy makeidle -active learn
//	rrcsim -trace email.trc -policy all        # compare every scheme
//	rrcsim -trace email.trc -policy 'fixedtail(wait=2s)'   # parameterized
//	rrcsim -trace month.rrcstream -stream      # O(1)-memory streamed replay
//	rrcsim -users 1000 -policy makeidle -parallel 0   # synthetic fleet replay
//
// -policy and -active take policy specs resolved against the policy
// registry: a bare name (statusquo, fixedtail, pctiat, oracle, makeidle /
// none, learn, fix — plus the legacy aliases 4.5s and 95iat), or
// "name(param=value,...)" to override parameters, e.g.
// 'pctiat(q=0.9)' or 'learn(maxdelay=5s,gamma=0.01)'. Unknown names and
// out-of-range parameters fail with the registry's catalog of valid
// policies and their parameter schemas. -policy all compares every paper
// scheme.
//
// -profile takes carrier profile specs resolved against the profile
// registry the same way: a canonical name (tmobile-3g, att-hspa+,
// verizon-3g, verizon-lte), a Table 2 display name ("Verizon 3G"), or a
// parameterized spec like 'att-hspa+(t1=4s)' overriding any measured
// constant. -carrier remains as an alias of a single -profile. In fleet
// mode -profile and -cohort repeat to sweep a grid: every combination of
// profile × cohort × scheme runs as its own deterministic fleet cell,
// rendered as one row per cell, e.g.
//
//	rrcsim -users 500 -policy makeidle -profile verizon-3g -profile 'verizon-lte(t1=5s)'
//	rrcsim -policy all -cohort 'study-3g(users=200)' -cohort 'mix(im=2,users=100)'
//
// -cohort takes cohort specs from the cohort registry (study-3g,
// study-lte, mix; see each family's users/duration/diurnal/seedstride and
// app-weight knobs) and replaces the flat -users/-duration pair.
//
// With -stream the trace is pulled through the replay engine packet by
// packet: rrcstream files — and pcap captures when -device-ip names the
// phone — replay in memory independent of trace length; other formats
// fall back to a single materializing decode. Trace-fitted policies
// (pctiat/95iat, active=fix) need the whole trace and refuse -stream.
//
// With -users N (no -trace) rrcsim replays an N-user synthetic diurnal
// cohort on the sharded fleet runtime and prints streaming aggregates;
// per-user traffic is streamed from the seeded generators, so memory is
// independent of -duration; -parallel bounds the worker count (results
// are identical for any value) and -shards fixes the aggregate
// partitioning.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/trace"
	"repro/internal/workload"
)

// specList collects a repeatable spec-string flag.
type specList []string

func (s *specList) String() string { return strings.Join(*s, ", ") }
func (s *specList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	var profileFlags, cohortFlags specList
	var (
		tracePath = flag.String("trace", "", "trace file (text or binary; required unless -users or -cohort is set)")
		carrier   = flag.String("carrier", "", "carrier profile name (alias of a single -profile)")
		polName   = flag.String("policy", "makeidle", "demote policy spec, e.g. makeidle, 4.5s, 'fixedtail(wait=2s)', or all")
		actName   = flag.String("active", "none", "batching policy spec, e.g. none, learn, 'learn(maxdelay=5s)', fix")
		burstGap  = flag.Duration("burstgap", time.Second, "session segmentation gap")
		stream    = flag.Bool("stream", false, "pull the trace through the engine packet-by-packet (O(1) memory for rrcstream files, and for pcap with -device-ip)")
		deviceIP  = flag.String("device-ip", "", "with -stream on a pcap capture: the device's IP address, enabling O(1)-memory pcap decode (otherwise the capture is materialized)")
		users     = flag.Int("users", 0, "fleet mode: replay this many synthetic diurnal users instead of -trace")
		duration  = flag.Duration("duration", 4*time.Hour, "fleet mode: per-user trace length")
		seed      = flag.Int64("seed", 1, "fleet mode: cohort seed")
		parallel  = flag.Int("parallel", 0, "fleet workers (0 = all cores, 1 = serial; never changes results)")
		shards    = flag.Int("shards", 0, "fleet aggregate shards (0 = fixed default)")
	)
	flag.Var(&profileFlags, "profile",
		"carrier profile spec, e.g. verizon-3g, 'att-hspa+(t1=4s)', or a Table 2 display name (repeatable in fleet mode)")
	flag.Var(&cohortFlags, "cohort",
		"fleet mode: cohort spec, e.g. 'study-3g(users=500)' or 'mix(im=2,users=100)' (repeatable; replaces -users)")
	flag.Parse()

	if *carrier != "" {
		profileFlags = append(profileFlags, *carrier)
	}
	if len(profileFlags) == 0 {
		profileFlags = specList{power.Verizon3G.Name}
	}

	fleetMode := *users > 0 || len(cohortFlags) > 0
	if fleetMode {
		if *tracePath != "" {
			fatal(fmt.Errorf("-users/-cohort and -trace are mutually exclusive"))
		}
		if *users > 0 && len(cohortFlags) > 0 {
			fatal(fmt.Errorf("-users and -cohort are mutually exclusive (cohort specs carry their own users knob)"))
		}
		if err := runFleet(profileFlags, cohortFlags, *users, *seed, *duration,
			*polName, *actName, *burstGap,
			fleet.Options{Workers: *parallel, Shards: *shards}); err != nil {
			fatal(err)
		}
		return
	}

	if len(profileFlags) > 1 {
		fatal(fmt.Errorf("multiple -profile values need fleet mode (-users or -cohort)"))
	}
	prof, err := resolveProfile(profileFlags[0])
	if err != nil {
		fatal(err)
	}
	opts := &sim.Options{BurstGap: *burstGap}

	if *tracePath == "" {
		fatal(fmt.Errorf("-trace is required (or -users N / -cohort for fleet mode)"))
	}

	if *stream {
		if err := runStreamed(*tracePath, *deviceIP, prof, *polName, *actName, *burstGap, opts); err != nil {
			fatal(err)
		}
		return
	}

	tr, err := readTrace(*tracePath)
	if err != nil {
		fatal(err)
	}

	if *polName == "all" {
		if err := compareAll(tr, prof, opts); err != nil {
			fatal(err)
		}
		return
	}

	demote, err := makeDemote(*polName, tr, prof)
	if err != nil {
		fatal(err)
	}
	active, err := makeActive(*actName, tr, prof, *burstGap)
	if err != nil {
		fatal(err)
	}

	sq, err := sim.Run(tr, prof, policy.StatusQuo{}, nil, opts)
	if err != nil {
		fatal(err)
	}
	res, err := sim.Run(tr, prof, demote, active, opts)
	if err != nil {
		fatal(err)
	}
	printResult(sq, res)
}

// readTrace auto-detects the trace format: the binary container, the
// framed streaming format, a pcap capture (e.g. straight from tcpdump), or
// the line-oriented text form.
func readTrace(path string) (trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if tr, err := trace.ReadBinary(f); err == nil {
		return tr, nil
	}
	if _, err := f.Seek(0, 0); err != nil {
		return nil, err
	}
	if tr, err := trace.ReadStream(f); err == nil {
		return tr, nil
	} else if !errors.Is(err, trace.ErrNotStream) {
		// The magic matched but the frames are bad: surface the real
		// corruption diagnostic instead of a misleading text-parse error.
		return nil, err
	}
	if _, err := f.Seek(0, 0); err != nil {
		return nil, err
	}
	if tr, err := trace.ReadPcap(f, nil); err == nil {
		return tr, nil
	}
	if _, err := f.Seek(0, 0); err != nil {
		return nil, err
	}
	return trace.ReadText(f)
}

// runStreamed replays the trace file by pulling packets through the
// engine's bounded lookahead: first the status-quo baseline, then the
// chosen policy pair, each over a fresh source. rrcstream files — and
// pcap captures when deviceIP names the phone — decode packet-by-packet
// in O(1) memory; other formats are decoded once (they need the whole
// file to sort or resolve directions) and replayed from the slice.
// Results are byte-identical to the materialized path on the same file.
func runStreamed(path, deviceIP string, prof power.Profile, polName, actName string, burstGap time.Duration, opts *sim.Options) error {
	if polName == "all" {
		return fmt.Errorf("-stream replays one policy pair; pick a policy")
	}
	if fitted, err := traceFitted(policy.RoleDemote, polName); err != nil {
		return err
	} else if fitted {
		return fmt.Errorf("policy %q is fitted to the whole trace and cannot stream; drop -stream", polName)
	}
	if fitted, err := traceFitted(policy.RoleActive, actName); err != nil {
		return err
	} else if fitted {
		return fmt.Errorf("active policy %q is fitted to the whole trace and cannot stream; drop -stream", actName)
	}
	var pcapOpts *trace.PcapOptions
	if deviceIP != "" {
		addr, err := netip.ParseAddr(deviceIP)
		if err != nil {
			return fmt.Errorf("bad -device-ip: %w", err)
		}
		pcapOpts = &trace.PcapOptions{DeviceIP: addr}
	}

	// Probe the format once; the fallback materializes once, not per replay.
	open, err := probeStreamFormat(path, pcapOpts)
	if err != nil {
		return err
	}
	replay := func(demote policy.DemotePolicy, active policy.ActivePolicy) (*sim.Result, error) {
		src, closeSrc, err := open()
		if err != nil {
			return nil, err
		}
		defer closeSrc()
		return sim.RunSource(src, prof, demote, active, opts)
	}
	sq, err := replay(policy.StatusQuo{}, nil)
	if err != nil {
		return err
	}
	demote, err := makeDemote(polName, nil, prof)
	if err != nil {
		return err
	}
	active, err := makeActive(actName, nil, prof, burstGap)
	if err != nil {
		return err
	}
	res, err := replay(demote, active)
	if err != nil {
		return err
	}
	printResult(sq, res)
	return nil
}

// probeStreamFormat decides how -stream will read the file and returns a
// per-replay source opener: an rrcstream decoder, a streaming pcap
// decoder (when pcapOpts carries the device address), or — for formats
// that cannot stream — a slice source over one up-front decode.
func probeStreamFormat(path string, pcapOpts *trace.PcapOptions) (func() (trace.Source, func() error, error), error) {
	probe, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	_, serr := trace.NewStreamReader(probe)
	probe.Close()
	if serr == nil {
		return func() (trace.Source, func() error, error) {
			f, err := os.Open(path)
			if err != nil {
				return nil, nil, err
			}
			sr, err := trace.NewStreamReader(f)
			if err != nil {
				f.Close()
				return nil, nil, err
			}
			return sr, f.Close, nil
		}, nil
	}
	if pcapOpts != nil {
		probe, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		_, perr := trace.NewPcapSource(probe, pcapOpts)
		probe.Close()
		if perr == nil {
			return func() (trace.Source, func() error, error) {
				f, err := os.Open(path)
				if err != nil {
					return nil, nil, err
				}
				ps, err := trace.NewPcapSource(f, pcapOpts)
				if err != nil {
					f.Close()
					return nil, nil, err
				}
				return ps, f.Close, nil
			}, nil
		}
	}
	tr, err := readTrace(path)
	if err != nil {
		return nil, err
	}
	return func() (trace.Source, func() error, error) {
		return tr.Source(), func() error { return nil }, nil
	}, nil
}

// makeDemote resolves a demote policy spec string through the registry.
// Resolution failures carry the registry's catalog of valid policies and
// their parameter schemas, so a typo answers with the whole menu.
func makeDemote(name string, tr trace.Trace, prof power.Profile) (policy.DemotePolicy, error) {
	spec, err := policy.ParseSpec(name)
	if err != nil {
		return nil, err
	}
	d, err := policy.Default().BuildDemote(spec, tr, prof)
	if err != nil {
		return nil, withUsage(err, policy.RoleDemote)
	}
	return d, nil
}

// makeActive is makeDemote for batching policies; "none" yields nil. The
// trace-fitted "fix" policy inherits the -burstgap flag unless the spec
// overrides it (fleet.WithFixBurstGap, the rule every surface shares).
func makeActive(name string, tr trace.Trace, prof power.Profile, burstGap time.Duration) (policy.ActivePolicy, error) {
	spec, err := policy.ParseSpec(name)
	if err != nil {
		return nil, err
	}
	spec = fleet.WithFixBurstGap(spec, burstGap)
	a, err := policy.Default().BuildActive(spec, tr, prof)
	if err != nil {
		return nil, withUsage(err, policy.RoleActive)
	}
	return a, nil
}

// withUsage appends the registry's policy catalog to a resolution error.
func withUsage(err error, role policy.Role) error {
	return fmt.Errorf("%w\nvalid %s policies:\n%s", err, role, policy.Default().Usage(role))
}

// traceFitted reports whether a policy spec resolves to a trace-fitted
// schema (the registry capability that forbids -stream).
func traceFitted(role policy.Role, name string) (bool, error) {
	spec, err := policy.ParseSpec(name)
	if err != nil {
		return false, err
	}
	schema, _, err := policy.Default().Resolve(role, spec)
	if err != nil {
		return false, withUsage(err, role)
	}
	return schema.TraceFitted, nil
}

func printResult(sq, res *sim.Result) {
	t := report.NewTable(fmt.Sprintf("%s on %s", res.Policy, res.Profile),
		"Metric", "Value")
	t.AddRowf("total energy (J)", res.TotalJ())
	t.AddRowf("  data (J)", res.Breakdown.DataJ)
	t.AddRowf("  DCH tail (J)", res.Breakdown.T1TailJ)
	t.AddRowf("  FACH tail (J)", res.Breakdown.T2TailJ)
	t.AddRowf("  switches (J)", res.Breakdown.SwitchJ)
	t.AddRowf("status quo energy (J)", sq.TotalJ())
	t.AddRowf("energy saved (%)", metrics.SavingsPercent(sq, res))
	t.AddRowf("promotions", res.Promotions)
	t.AddRowf("switches / status quo", metrics.SwitchRatio(sq, res))
	if res.Active != "" {
		d := metrics.Delays(res.BurstDelays)
		t.AddRowf("batching policy", res.Active)
		t.AddRowf("bursts delayed", d.Count)
		t.AddRowf("mean delay (s)", d.Mean.Seconds())
		t.AddRowf("median delay (s)", d.Median.Seconds())
	}
	fmt.Print(t.String())
}

func compareAll(tr trace.Trace, prof power.Profile, opts *sim.Options) error {
	sq, schemes, err := experiments.RunSchemes(tr, prof, opts)
	if err != nil {
		return err
	}
	t := report.NewTable(fmt.Sprintf("All schemes on %s (status quo: %.1f J, %d switches)",
		prof.Name, sq.TotalJ(), sq.Promotions),
		"Scheme", "Energy(J)", "Saved(%)", "Switches/statusquo", "Saved per switch(J)")
	for _, s := range schemes {
		t.AddRowf(s.Scheme, s.Result.TotalJ(), s.SavingsPct, s.SwitchRatio, s.SavedPerSwitchJ)
	}
	fmt.Print(t.String())
	return nil
}

// profileSpecFromFlag adapts a CLI profile spec string to a power
// ProfileSpec. Plain flat spellings keep their legacy labels ("Verizon 3G"
// stays "Verizon 3G"); parameterized specs get registry-derived labels
// ("verizon-lte(t1=5s)") — the same per-half rule the policy flags use.
func profileSpecFromFlag(raw string) (power.ProfileSpec, error) {
	sp, err := spec.Parse(raw)
	if err != nil {
		return power.ProfileSpec{}, fmt.Errorf("profile: %w", err)
	}
	ps := power.ProfileSpec{Name: sp.Name, Params: sp.Params}
	if !strings.ContainsRune(raw, '(') {
		ps.Label = sp.Name
	}
	if _, err := ps.Profile(power.Default()); err != nil {
		return power.ProfileSpec{}, fmt.Errorf("%w\nvalid profiles:\n%s", err, power.Default().Usage())
	}
	return ps, nil
}

// resolveProfile builds the validated Profile a single-replay run uses.
func resolveProfile(raw string) (power.Profile, error) {
	ps, err := profileSpecFromFlag(raw)
	if err != nil {
		return power.Profile{}, err
	}
	return ps.Profile(power.Default())
}

// cohortFromFlag resolves a CLI cohort spec string against the cohort
// registry, returning the runnable cohort plus its axis label.
func cohortFromFlag(raw string, seed int64, burstGap time.Duration) (fleet.Cohort, string, error) {
	sp, err := spec.Parse(raw)
	if err != nil {
		return fleet.Cohort{}, "", fmt.Errorf("cohort: %w", err)
	}
	cs := fleet.CohortSpec{Name: sp.Name, Params: sp.Params}
	cohort, err := fleet.CohortFromSpec(workload.Cohorts(), cs, seed,
		&sim.Options{BurstGap: burstGap})
	if err != nil {
		return fleet.Cohort{}, "", fmt.Errorf("%w\nvalid cohorts:\n%s", err, workload.Cohorts().Usage())
	}
	label, err := cs.ResolvedLabel(workload.Cohorts())
	if err != nil {
		return fleet.Cohort{}, "", err
	}
	return cohort, label, nil
}

// runFleet replays synthetic cohorts on the sharded runtime and prints
// streaming aggregates — no per-user result is retained. A single profile
// with the flat -users population keeps the historical single-table
// output; repeated -profile/-cohort flags sweep a grid, one deterministic
// fleet run per cohort × profile × scheme cell, rendered one row per cell.
func runFleet(profileFlags, cohortFlags []string, users int, seed int64, duration time.Duration, polName, actName string, burstGap time.Duration, fopts fleet.Options) error {
	var schemes []fleet.Scheme
	if polName == "all" {
		schemes = experiments.FleetSchemes(burstGap)
	} else {
		s, err := fleetScheme(polName, actName, burstGap)
		if err != nil {
			return err
		}
		schemes = []fleet.Scheme{s}
	}

	var cohorts []experiments.LabeledCohort
	if len(cohortFlags) == 0 {
		// Flat -users population: the historical default, a diurnal cohort
		// cycling the Verizon 3G study mixes.
		cohorts = []experiments.LabeledCohort{{
			Cohort: fleet.Cohort{
				Users: users, Seed: seed, Duration: duration, Diurnal: true,
				Opts: &sim.Options{BurstGap: burstGap},
			},
			Label: fmt.Sprintf("users=%d", users),
		}}
	} else {
		for _, raw := range cohortFlags {
			cohort, label, err := cohortFromFlag(raw, seed, burstGap)
			if err != nil {
				return err
			}
			cohorts = append(cohorts, experiments.LabeledCohort{Cohort: cohort, Label: label})
		}
	}

	profs := make([]power.Profile, 0, len(profileFlags))
	for _, raw := range profileFlags {
		prof, err := resolveProfile(raw)
		if err != nil {
			return err
		}
		profs = append(profs, prof)
	}

	// The historical single-axis shape keeps its output byte for byte.
	if len(profs) == 1 && len(cohortFlags) == 0 {
		cohort := cohorts[0].Cohort
		jobs := cohort.Jobs(profs[0], schemes)
		start := time.Now()
		sum, err := fleet.RunSummary(jobs, fopts, fleet.SummaryConfig{})
		if err != nil {
			return err
		}
		fmt.Printf("fleet: %d users x %d schemes on %s (%s traces, streamed) in %s\n",
			cohort.Users, len(schemes), profs[0].Name, cohort.Duration,
			time.Since(start).Round(time.Millisecond))
		fmt.Print(report.SummaryTable(sum).String())
		return nil
	}

	// Grid sweep, through the shared cell runner — the same execution
	// shape (cohort-major cell order, one fleet run per cell, and
	// therefore the same bytes per cell) as the service's grid jobs.
	start := time.Now()
	cells, err := experiments.GridCells(fopts, cohorts, profs, schemes)
	if err != nil {
		return err
	}
	fmt.Printf("fleet grid: %d cohorts x %d profiles x %d schemes = %d cells in %s\n",
		len(cohorts), len(profs), len(schemes), len(cells),
		time.Since(start).Round(time.Millisecond))
	fmt.Print(report.GridTable(cells).String())
	return nil
}

// fleetScheme adapts the CLI policy spec strings to a fleet scheme. Plain
// flat names keep their legacy summary labels ("makeidle+learn");
// parameterized specs get derived labels ("fixedtail(wait=2s)").
func fleetScheme(polName, actName string, burstGap time.Duration) (fleet.Scheme, error) {
	dspec, err := policy.ParseSpec(polName)
	if err != nil {
		return fleet.Scheme{}, err
	}
	if _, _, err := policy.Default().Resolve(policy.RoleDemote, dspec); err != nil {
		return fleet.Scheme{}, withUsage(err, policy.RoleDemote)
	}
	aspec, err := policy.ParseSpec(actName)
	if err != nil {
		return fleet.Scheme{}, err
	}
	aspec = fleet.WithFixBurstGap(aspec, burstGap)
	aschema, _, err := policy.Default().Resolve(policy.RoleActive, aspec)
	if err != nil {
		return fleet.Scheme{}, withUsage(err, policy.RoleActive)
	}
	// Summary labels are decided per flag half: a flat spelling keeps its
	// legacy label (the ParseSpec-trimmed name, aliases included — "4.5s"
	// stays "4.5s"), a parameterized spec gets the registry-derived one —
	// so mixing the two forms never relabels the flat half.
	labelFor := func(raw string, role policy.Role, spec policy.Spec) (string, error) {
		if !strings.ContainsRune(raw, '(') {
			return spec.Name, nil
		}
		return policy.Default().Label(role, spec)
	}
	label, err := labelFor(polName, policy.RoleDemote, dspec)
	if err != nil {
		return fleet.Scheme{}, err
	}
	ss := fleet.SchemeSpec{Label: label, Policy: dspec}
	if aschema.Name != fleet.ActiveNone {
		alabel, err := labelFor(actName, policy.RoleActive, aspec)
		if err != nil {
			return fleet.Scheme{}, err
		}
		ss.Label = label + "+" + alabel
		ss.Active = &aspec
	}
	return fleet.SchemeFromSpec(policy.Default(), ss)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rrcsim:", err)
	os.Exit(1)
}
