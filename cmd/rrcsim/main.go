// Command rrcsim replays packet traces against a carrier profile under a
// chosen radio-control policy and prints the energy/signaling report.
//
// Usage:
//
//	tracegen -app Email -o email.trc
//	rrcsim -trace email.trc -carrier "Verizon 3G" -policy makeidle -active learn
//	rrcsim -trace email.trc -policy all        # compare every scheme
//	rrcsim -trace email.trc -policy 'fixedtail(wait=2s)'   # parameterized
//	rrcsim -trace month.rrcstream -stream      # O(1)-memory streamed replay
//	rrcsim -users 1000 -policy makeidle -parallel 0   # synthetic fleet replay
//
// -policy and -active take policy specs resolved against the policy
// registry: a bare name (statusquo, fixedtail, pctiat, oracle, makeidle /
// none, learn, fix — plus the legacy aliases 4.5s and 95iat), or
// "name(param=value,...)" to override parameters, e.g.
// 'pctiat(q=0.9)' or 'learn(maxdelay=5s,gamma=0.01)'. Unknown names and
// out-of-range parameters fail with the registry's catalog of valid
// policies and their parameter schemas. -policy all compares every paper
// scheme.
//
// With -stream the trace is pulled through the replay engine packet by
// packet: rrcstream files — and pcap captures when -device-ip names the
// phone — replay in memory independent of trace length; other formats
// fall back to a single materializing decode. Trace-fitted policies
// (pctiat/95iat, active=fix) need the whole trace and refuse -stream.
//
// With -users N (no -trace) rrcsim replays an N-user synthetic diurnal
// cohort on the sharded fleet runtime and prints streaming aggregates;
// per-user traffic is streamed from the seeded generators, so memory is
// independent of -duration; -parallel bounds the worker count (results
// are identical for any value) and -shards fixes the aggregate
// partitioning.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "trace file (text or binary; required unless -users is set)")
		carrier   = flag.String("carrier", "Verizon 3G", "carrier profile name (see Table 2)")
		polName   = flag.String("policy", "makeidle", "demote policy spec, e.g. makeidle, 4.5s, 'fixedtail(wait=2s)', or all")
		actName   = flag.String("active", "none", "batching policy spec, e.g. none, learn, 'learn(maxdelay=5s)', fix")
		burstGap  = flag.Duration("burstgap", time.Second, "session segmentation gap")
		stream    = flag.Bool("stream", false, "pull the trace through the engine packet-by-packet (O(1) memory for rrcstream files, and for pcap with -device-ip)")
		deviceIP  = flag.String("device-ip", "", "with -stream on a pcap capture: the device's IP address, enabling O(1)-memory pcap decode (otherwise the capture is materialized)")
		users     = flag.Int("users", 0, "fleet mode: replay this many synthetic diurnal users instead of -trace")
		duration  = flag.Duration("duration", 4*time.Hour, "fleet mode: per-user trace length")
		seed      = flag.Int64("seed", 1, "fleet mode: cohort seed")
		parallel  = flag.Int("parallel", 0, "fleet workers (0 = all cores, 1 = serial; never changes results)")
		shards    = flag.Int("shards", 0, "fleet aggregate shards (0 = fixed default)")
	)
	flag.Parse()

	prof, ok := power.ByName(*carrier)
	if !ok {
		fatal(fmt.Errorf("unknown carrier %q", *carrier))
	}
	opts := &sim.Options{BurstGap: *burstGap}

	if *users > 0 {
		if *tracePath != "" {
			fatal(fmt.Errorf("-users and -trace are mutually exclusive"))
		}
		if err := runFleet(prof, *users, *seed, *duration, *polName, *actName, *burstGap,
			fleet.Options{Workers: *parallel, Shards: *shards}); err != nil {
			fatal(err)
		}
		return
	}

	if *tracePath == "" {
		fatal(fmt.Errorf("-trace is required (or -users N for fleet mode)"))
	}

	if *stream {
		if err := runStreamed(*tracePath, *deviceIP, prof, *polName, *actName, *burstGap, opts); err != nil {
			fatal(err)
		}
		return
	}

	tr, err := readTrace(*tracePath)
	if err != nil {
		fatal(err)
	}

	if *polName == "all" {
		if err := compareAll(tr, prof, opts); err != nil {
			fatal(err)
		}
		return
	}

	demote, err := makeDemote(*polName, tr, prof)
	if err != nil {
		fatal(err)
	}
	active, err := makeActive(*actName, tr, prof, *burstGap)
	if err != nil {
		fatal(err)
	}

	sq, err := sim.Run(tr, prof, policy.StatusQuo{}, nil, opts)
	if err != nil {
		fatal(err)
	}
	res, err := sim.Run(tr, prof, demote, active, opts)
	if err != nil {
		fatal(err)
	}
	printResult(sq, res)
}

// readTrace auto-detects the trace format: the binary container, the
// framed streaming format, a pcap capture (e.g. straight from tcpdump), or
// the line-oriented text form.
func readTrace(path string) (trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if tr, err := trace.ReadBinary(f); err == nil {
		return tr, nil
	}
	if _, err := f.Seek(0, 0); err != nil {
		return nil, err
	}
	if tr, err := trace.ReadStream(f); err == nil {
		return tr, nil
	} else if !errors.Is(err, trace.ErrNotStream) {
		// The magic matched but the frames are bad: surface the real
		// corruption diagnostic instead of a misleading text-parse error.
		return nil, err
	}
	if _, err := f.Seek(0, 0); err != nil {
		return nil, err
	}
	if tr, err := trace.ReadPcap(f, nil); err == nil {
		return tr, nil
	}
	if _, err := f.Seek(0, 0); err != nil {
		return nil, err
	}
	return trace.ReadText(f)
}

// runStreamed replays the trace file by pulling packets through the
// engine's bounded lookahead: first the status-quo baseline, then the
// chosen policy pair, each over a fresh source. rrcstream files — and
// pcap captures when deviceIP names the phone — decode packet-by-packet
// in O(1) memory; other formats are decoded once (they need the whole
// file to sort or resolve directions) and replayed from the slice.
// Results are byte-identical to the materialized path on the same file.
func runStreamed(path, deviceIP string, prof power.Profile, polName, actName string, burstGap time.Duration, opts *sim.Options) error {
	if polName == "all" {
		return fmt.Errorf("-stream replays one policy pair; pick a policy")
	}
	if fitted, err := traceFitted(policy.RoleDemote, polName); err != nil {
		return err
	} else if fitted {
		return fmt.Errorf("policy %q is fitted to the whole trace and cannot stream; drop -stream", polName)
	}
	if fitted, err := traceFitted(policy.RoleActive, actName); err != nil {
		return err
	} else if fitted {
		return fmt.Errorf("active policy %q is fitted to the whole trace and cannot stream; drop -stream", actName)
	}
	var pcapOpts *trace.PcapOptions
	if deviceIP != "" {
		addr, err := netip.ParseAddr(deviceIP)
		if err != nil {
			return fmt.Errorf("bad -device-ip: %w", err)
		}
		pcapOpts = &trace.PcapOptions{DeviceIP: addr}
	}

	// Probe the format once; the fallback materializes once, not per replay.
	open, err := probeStreamFormat(path, pcapOpts)
	if err != nil {
		return err
	}
	replay := func(demote policy.DemotePolicy, active policy.ActivePolicy) (*sim.Result, error) {
		src, closeSrc, err := open()
		if err != nil {
			return nil, err
		}
		defer closeSrc()
		return sim.RunSource(src, prof, demote, active, opts)
	}
	sq, err := replay(policy.StatusQuo{}, nil)
	if err != nil {
		return err
	}
	demote, err := makeDemote(polName, nil, prof)
	if err != nil {
		return err
	}
	active, err := makeActive(actName, nil, prof, burstGap)
	if err != nil {
		return err
	}
	res, err := replay(demote, active)
	if err != nil {
		return err
	}
	printResult(sq, res)
	return nil
}

// probeStreamFormat decides how -stream will read the file and returns a
// per-replay source opener: an rrcstream decoder, a streaming pcap
// decoder (when pcapOpts carries the device address), or — for formats
// that cannot stream — a slice source over one up-front decode.
func probeStreamFormat(path string, pcapOpts *trace.PcapOptions) (func() (trace.Source, func() error, error), error) {
	probe, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	_, serr := trace.NewStreamReader(probe)
	probe.Close()
	if serr == nil {
		return func() (trace.Source, func() error, error) {
			f, err := os.Open(path)
			if err != nil {
				return nil, nil, err
			}
			sr, err := trace.NewStreamReader(f)
			if err != nil {
				f.Close()
				return nil, nil, err
			}
			return sr, f.Close, nil
		}, nil
	}
	if pcapOpts != nil {
		probe, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		_, perr := trace.NewPcapSource(probe, pcapOpts)
		probe.Close()
		if perr == nil {
			return func() (trace.Source, func() error, error) {
				f, err := os.Open(path)
				if err != nil {
					return nil, nil, err
				}
				ps, err := trace.NewPcapSource(f, pcapOpts)
				if err != nil {
					f.Close()
					return nil, nil, err
				}
				return ps, f.Close, nil
			}, nil
		}
	}
	tr, err := readTrace(path)
	if err != nil {
		return nil, err
	}
	return func() (trace.Source, func() error, error) {
		return tr.Source(), func() error { return nil }, nil
	}, nil
}

// makeDemote resolves a demote policy spec string through the registry.
// Resolution failures carry the registry's catalog of valid policies and
// their parameter schemas, so a typo answers with the whole menu.
func makeDemote(name string, tr trace.Trace, prof power.Profile) (policy.DemotePolicy, error) {
	spec, err := policy.ParseSpec(name)
	if err != nil {
		return nil, err
	}
	d, err := policy.Default().BuildDemote(spec, tr, prof)
	if err != nil {
		return nil, withUsage(err, policy.RoleDemote)
	}
	return d, nil
}

// makeActive is makeDemote for batching policies; "none" yields nil. The
// trace-fitted "fix" policy inherits the -burstgap flag unless the spec
// overrides it (fleet.WithFixBurstGap, the rule every surface shares).
func makeActive(name string, tr trace.Trace, prof power.Profile, burstGap time.Duration) (policy.ActivePolicy, error) {
	spec, err := policy.ParseSpec(name)
	if err != nil {
		return nil, err
	}
	spec = fleet.WithFixBurstGap(spec, burstGap)
	a, err := policy.Default().BuildActive(spec, tr, prof)
	if err != nil {
		return nil, withUsage(err, policy.RoleActive)
	}
	return a, nil
}

// withUsage appends the registry's policy catalog to a resolution error.
func withUsage(err error, role policy.Role) error {
	return fmt.Errorf("%w\nvalid %s policies:\n%s", err, role, policy.Default().Usage(role))
}

// traceFitted reports whether a policy spec resolves to a trace-fitted
// schema (the registry capability that forbids -stream).
func traceFitted(role policy.Role, name string) (bool, error) {
	spec, err := policy.ParseSpec(name)
	if err != nil {
		return false, err
	}
	schema, _, err := policy.Default().Resolve(role, spec)
	if err != nil {
		return false, withUsage(err, role)
	}
	return schema.TraceFitted, nil
}

func printResult(sq, res *sim.Result) {
	t := report.NewTable(fmt.Sprintf("%s on %s", res.Policy, res.Profile),
		"Metric", "Value")
	t.AddRowf("total energy (J)", res.TotalJ())
	t.AddRowf("  data (J)", res.Breakdown.DataJ)
	t.AddRowf("  DCH tail (J)", res.Breakdown.T1TailJ)
	t.AddRowf("  FACH tail (J)", res.Breakdown.T2TailJ)
	t.AddRowf("  switches (J)", res.Breakdown.SwitchJ)
	t.AddRowf("status quo energy (J)", sq.TotalJ())
	t.AddRowf("energy saved (%)", metrics.SavingsPercent(sq, res))
	t.AddRowf("promotions", res.Promotions)
	t.AddRowf("switches / status quo", metrics.SwitchRatio(sq, res))
	if res.Active != "" {
		d := metrics.Delays(res.BurstDelays)
		t.AddRowf("batching policy", res.Active)
		t.AddRowf("bursts delayed", d.Count)
		t.AddRowf("mean delay (s)", d.Mean.Seconds())
		t.AddRowf("median delay (s)", d.Median.Seconds())
	}
	fmt.Print(t.String())
}

func compareAll(tr trace.Trace, prof power.Profile, opts *sim.Options) error {
	sq, schemes, err := experiments.RunSchemes(tr, prof, opts)
	if err != nil {
		return err
	}
	t := report.NewTable(fmt.Sprintf("All schemes on %s (status quo: %.1f J, %d switches)",
		prof.Name, sq.TotalJ(), sq.Promotions),
		"Scheme", "Energy(J)", "Saved(%)", "Switches/statusquo", "Saved per switch(J)")
	for _, s := range schemes {
		t.AddRowf(s.Scheme, s.Result.TotalJ(), s.SavingsPct, s.SwitchRatio, s.SavedPerSwitchJ)
	}
	fmt.Print(t.String())
	return nil
}

// runFleet replays a synthetic diurnal cohort on the sharded runtime and
// prints streaming aggregates — no per-user result is retained.
func runFleet(prof power.Profile, users int, seed int64, duration time.Duration, polName, actName string, burstGap time.Duration, fopts fleet.Options) error {
	var schemes []fleet.Scheme
	if polName == "all" {
		schemes = experiments.FleetSchemes(burstGap)
	} else {
		s, err := fleetScheme(polName, actName, burstGap)
		if err != nil {
			return err
		}
		schemes = []fleet.Scheme{s}
	}
	cohort := fleet.Cohort{
		Users: users, Seed: seed, Duration: duration, Diurnal: true,
		Opts: &sim.Options{BurstGap: burstGap},
	}
	jobs := cohort.Jobs(prof, schemes)
	start := time.Now()
	sum, err := fleet.RunSummary(jobs, fopts, fleet.SummaryConfig{})
	if err != nil {
		return err
	}
	fmt.Printf("fleet: %d users x %d schemes on %s (%s traces, streamed) in %s\n",
		users, len(schemes), prof.Name, duration, time.Since(start).Round(time.Millisecond))
	fmt.Print(report.SummaryTable(sum).String())
	return nil
}

// fleetScheme adapts the CLI policy spec strings to a fleet scheme. Plain
// flat names keep their legacy summary labels ("makeidle+learn");
// parameterized specs get derived labels ("fixedtail(wait=2s)").
func fleetScheme(polName, actName string, burstGap time.Duration) (fleet.Scheme, error) {
	dspec, err := policy.ParseSpec(polName)
	if err != nil {
		return fleet.Scheme{}, err
	}
	if _, _, err := policy.Default().Resolve(policy.RoleDemote, dspec); err != nil {
		return fleet.Scheme{}, withUsage(err, policy.RoleDemote)
	}
	aspec, err := policy.ParseSpec(actName)
	if err != nil {
		return fleet.Scheme{}, err
	}
	aspec = fleet.WithFixBurstGap(aspec, burstGap)
	aschema, _, err := policy.Default().Resolve(policy.RoleActive, aspec)
	if err != nil {
		return fleet.Scheme{}, withUsage(err, policy.RoleActive)
	}
	// Summary labels are decided per flag half: a flat spelling keeps its
	// legacy label (the ParseSpec-trimmed name, aliases included — "4.5s"
	// stays "4.5s"), a parameterized spec gets the registry-derived one —
	// so mixing the two forms never relabels the flat half.
	labelFor := func(raw string, role policy.Role, spec policy.Spec) (string, error) {
		if !strings.ContainsRune(raw, '(') {
			return spec.Name, nil
		}
		return policy.Default().Label(role, spec)
	}
	label, err := labelFor(polName, policy.RoleDemote, dspec)
	if err != nil {
		return fleet.Scheme{}, err
	}
	ss := fleet.SchemeSpec{Label: label, Policy: dspec}
	if aschema.Name != fleet.ActiveNone {
		alabel, err := labelFor(actName, policy.RoleActive, aspec)
		if err != nil {
			return fleet.Scheme{}, err
		}
		ss.Label = label + "+" + alabel
		ss.Active = &aspec
	}
	return fleet.SchemeFromSpec(policy.Default(), ss)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rrcsim:", err)
	os.Exit(1)
}
