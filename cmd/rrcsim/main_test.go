package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/power"
	"repro/internal/trace"
	"repro/internal/workload"
)

func writeTempTrace(t *testing.T, write func(f *os.File) error) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadTraceAllFormats(t *testing.T) {
	tr := workload.Generate(workload.Game(), 1, 30*time.Minute)
	writers := map[string]func(f *os.File) error{
		"text":   func(f *os.File) error { return trace.WriteText(f, tr) },
		"binary": func(f *os.File) error { return trace.WriteBinary(f, tr) },
		"pcap":   func(f *os.File) error { return trace.WritePcap(f, tr) },
	}
	for name, w := range writers {
		path := writeTempTrace(t, w)
		got, err := readTrace(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != len(tr) {
			t.Fatalf("%s: %d packets, want %d", name, len(got), len(tr))
		}
	}
}

func TestReadTraceMissing(t *testing.T) {
	if _, err := readTrace("/nonexistent/file"); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestReadTraceTinyTextFile: a text trace shorter than the 8-byte stream
// magic must still parse (the stream probe reports not-a-stream, not a
// hard error).
func TestReadTraceTinyTextFile(t *testing.T) {
	path := writeTempTrace(t, func(f *os.File) error {
		_, err := f.WriteString("0 in 5\n")
		return err
	})
	tr, err := readTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 1 || tr[0].Size != 5 {
		t.Fatalf("tiny trace parsed as %+v", tr)
	}
}

// TestReadTraceCorruptStream: a truncated rrcstream file must surface the
// stream corruption diagnostic, not fall through to a text-parse error.
func TestReadTraceCorruptStream(t *testing.T) {
	full := writeTempTrace(t, func(f *os.File) error {
		return trace.WriteStream(f, workload.Generate(workload.Email(), 2, time.Hour))
	})
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	trunc := writeTempTrace(t, func(f *os.File) error {
		_, err := f.Write(data[:len(data)-1])
		return err
	})
	if _, err := readTrace(trunc); err == nil {
		t.Fatal("truncated stream accepted")
	} else if !strings.Contains(err.Error(), "stream frame") {
		t.Fatalf("got %v, want a stream-frame diagnostic", err)
	}
}

func TestMakeDemoteAll(t *testing.T) {
	tr := workload.Generate(workload.Email(), 1, time.Hour)
	prof := power.Verizon3G
	for _, name := range []string{"statusquo", "4.5s", "95iat", "oracle", "makeidle",
		"fixedtail(wait=2s)", "pctiat(q=0.9)", "makeidle(window=250)"} {
		d, err := makeDemote(name, tr, prof)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d == nil {
			t.Fatalf("%s: nil policy", name)
		}
	}
	err := makeDemoteErr(t, "nonsense", tr, prof)
	// The rejection must carry the registry's catalog: valid names and
	// their parameter schemas, not a bare "unknown policy".
	for _, want := range []string{"nonsense", "makeidle", "fixedtail", "wait", "default 4.5s", "95iat"} {
		if !strings.Contains(err, want) {
			t.Fatalf("unknown-policy error missing %q:\n%s", want, err)
		}
	}
	if bad := makeDemoteErr(t, "fixedtail(wait=20m)", tr, prof); !strings.Contains(bad, "maximum") {
		t.Fatalf("out-of-bounds error not explained:\n%s", bad)
	}
}

func makeDemoteErr(t *testing.T, name string, tr trace.Trace, prof power.Profile) string {
	t.Helper()
	_, err := makeDemote(name, tr, prof)
	if err == nil {
		t.Fatalf("%s accepted", name)
	}
	return err.Error()
}

func TestMakeActiveAll(t *testing.T) {
	tr := workload.Generate(workload.Email(), 1, time.Hour)
	prof := power.Verizon3G
	if a, err := makeActive("none", tr, prof, time.Second); err != nil || a != nil {
		t.Fatalf("none: %v %v", a, err)
	}
	for _, name := range []string{"learn", "fix", "learn(maxdelay=5s,gamma=0.01)"} {
		a, err := makeActive(name, tr, prof, time.Second)
		if err != nil || a == nil {
			t.Fatalf("%s: %v %v", name, a, err)
		}
	}
	_, err := makeActive("nonsense", tr, prof, time.Second)
	if err == nil {
		t.Fatal("unknown active policy accepted")
	}
	for _, want := range []string{"learn", "fix", "maxdelay", "gamma"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("unknown-active error missing %q:\n%v", want, err)
		}
	}
}

// TestFleetSchemeLabels: flat names keep legacy summary labels,
// parameterized specs derive theirs.
func TestFleetSchemeLabels(t *testing.T) {
	cases := map[[2]string]string{
		{"makeidle", "none"}:               "makeidle",
		{"makeidle", "learn"}:              "makeidle+learn",
		{"4.5s", "none"}:                   "4.5s",
		{" makeidle ", "none"}:             "makeidle", // padded flags resolve trimmed
		{"fixedtail(wait=2s)", "none"}:     "fixedtail(wait=2s)",
		{"makeidle", "learn(maxdelay=5s)"}: "makeidle+learn(maxdelay=5s)",
		// Mixed forms: the flat half keeps its legacy spelling.
		{"4.5s", "learn(maxdelay=5s)"}: "4.5s+learn(maxdelay=5s)",
	}
	for in, want := range cases {
		s, err := fleetScheme(in[0], in[1], time.Second)
		if err != nil {
			t.Fatalf("%v: %v", in, err)
		}
		if s.Name != want {
			t.Errorf("fleetScheme(%v) label %q, want %q", in, s.Name, want)
		}
	}
	if _, err := fleetScheme("makeidle", "procrastinate", time.Second); err == nil {
		t.Fatal("unknown active accepted in fleet mode")
	}
}
