package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/power"
	"repro/internal/trace"
	"repro/internal/workload"
)

func writeTempTrace(t *testing.T, write func(f *os.File) error) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadTraceAllFormats(t *testing.T) {
	tr := workload.Generate(workload.Game(), 1, 30*time.Minute)
	writers := map[string]func(f *os.File) error{
		"text":   func(f *os.File) error { return trace.WriteText(f, tr) },
		"binary": func(f *os.File) error { return trace.WriteBinary(f, tr) },
		"pcap":   func(f *os.File) error { return trace.WritePcap(f, tr) },
	}
	for name, w := range writers {
		path := writeTempTrace(t, w)
		got, err := readTrace(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != len(tr) {
			t.Fatalf("%s: %d packets, want %d", name, len(got), len(tr))
		}
	}
}

func TestReadTraceMissing(t *testing.T) {
	if _, err := readTrace("/nonexistent/file"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestMakeDemoteAll(t *testing.T) {
	tr := workload.Generate(workload.Email(), 1, time.Hour)
	prof := power.Verizon3G
	for _, name := range []string{"statusquo", "4.5s", "95iat", "oracle", "makeidle"} {
		d, err := makeDemote(name, tr, prof)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d == nil {
			t.Fatalf("%s: nil policy", name)
		}
	}
	if _, err := makeDemote("nonsense", tr, prof); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestMakeActiveAll(t *testing.T) {
	tr := workload.Generate(workload.Email(), 1, time.Hour)
	prof := power.Verizon3G
	if a, err := makeActive("none", tr, prof, time.Second); err != nil || a != nil {
		t.Fatalf("none: %v %v", a, err)
	}
	for _, name := range []string{"learn", "fix"} {
		a, err := makeActive(name, tr, prof, time.Second)
		if err != nil || a == nil {
			t.Fatalf("%s: %v %v", name, a, err)
		}
	}
	if _, err := makeActive("nonsense", tr, prof, time.Second); err == nil {
		t.Fatal("unknown active policy accepted")
	}
}
