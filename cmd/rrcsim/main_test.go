package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/power"
	"repro/internal/trace"
	"repro/internal/workload"
)

func writeTempTrace(t *testing.T, write func(f *os.File) error) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadTraceAllFormats(t *testing.T) {
	tr := workload.Generate(workload.Game(), 1, 30*time.Minute)
	writers := map[string]func(f *os.File) error{
		"text":   func(f *os.File) error { return trace.WriteText(f, tr) },
		"binary": func(f *os.File) error { return trace.WriteBinary(f, tr) },
		"pcap":   func(f *os.File) error { return trace.WritePcap(f, tr) },
	}
	for name, w := range writers {
		path := writeTempTrace(t, w)
		got, err := readTrace(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != len(tr) {
			t.Fatalf("%s: %d packets, want %d", name, len(got), len(tr))
		}
	}
}

func TestReadTraceMissing(t *testing.T) {
	if _, err := readTrace("/nonexistent/file"); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestReadTraceTinyTextFile: a text trace shorter than the 8-byte stream
// magic must still parse (the stream probe reports not-a-stream, not a
// hard error).
func TestReadTraceTinyTextFile(t *testing.T) {
	path := writeTempTrace(t, func(f *os.File) error {
		_, err := f.WriteString("0 in 5\n")
		return err
	})
	tr, err := readTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 1 || tr[0].Size != 5 {
		t.Fatalf("tiny trace parsed as %+v", tr)
	}
}

// TestReadTraceCorruptStream: a truncated rrcstream file must surface the
// stream corruption diagnostic, not fall through to a text-parse error.
func TestReadTraceCorruptStream(t *testing.T) {
	full := writeTempTrace(t, func(f *os.File) error {
		return trace.WriteStream(f, workload.Generate(workload.Email(), 2, time.Hour))
	})
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	trunc := writeTempTrace(t, func(f *os.File) error {
		_, err := f.Write(data[:len(data)-1])
		return err
	})
	if _, err := readTrace(trunc); err == nil {
		t.Fatal("truncated stream accepted")
	} else if !strings.Contains(err.Error(), "stream frame") {
		t.Fatalf("got %v, want a stream-frame diagnostic", err)
	}
}

func TestMakeDemoteAll(t *testing.T) {
	tr := workload.Generate(workload.Email(), 1, time.Hour)
	prof := power.Verizon3G
	for _, name := range []string{"statusquo", "4.5s", "95iat", "oracle", "makeidle"} {
		d, err := makeDemote(name, tr, prof)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d == nil {
			t.Fatalf("%s: nil policy", name)
		}
	}
	if _, err := makeDemote("nonsense", tr, prof); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestMakeActiveAll(t *testing.T) {
	tr := workload.Generate(workload.Email(), 1, time.Hour)
	prof := power.Verizon3G
	if a, err := makeActive("none", tr, prof, time.Second); err != nil || a != nil {
		t.Fatalf("none: %v %v", a, err)
	}
	for _, name := range []string{"learn", "fix"} {
		a, err := makeActive(name, tr, prof, time.Second)
		if err != nil || a == nil {
			t.Fatalf("%s: %v %v", name, a, err)
		}
	}
	if _, err := makeActive("nonsense", tr, prof, time.Second); err == nil {
		t.Fatal("unknown active policy accepted")
	}
}
