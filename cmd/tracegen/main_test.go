package main

import (
	"testing"
	"time"
)

func TestGenerateApp(t *testing.T) {
	tr, err := generate("Email", "", "3g", 1, time.Hour, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) == 0 {
		t.Fatal("empty trace")
	}
}

func TestGenerateUserCohorts(t *testing.T) {
	for _, cohort := range []string{"3g", "lte"} {
		tr, err := generate("", "user1", cohort, 1, time.Hour, false)
		if err != nil {
			t.Fatalf("%s: %v", cohort, err)
		}
		if len(tr) == 0 {
			t.Fatalf("%s: empty trace", cohort)
		}
	}
}

func TestGenerateDiurnal(t *testing.T) {
	raw, err := generate("IM", "", "3g", 1, 24*time.Hour, false)
	if err != nil {
		t.Fatal(err)
	}
	masked, err := generate("IM", "", "3g", 1, 24*time.Hour, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(masked) >= len(raw) {
		t.Fatalf("diurnal mask did not reduce traffic: %d vs %d", len(masked), len(raw))
	}
}

func TestGenerateErrors(t *testing.T) {
	cases := []struct {
		app, user, cohort string
	}{
		{"Email", "user1", "3g"}, // both
		{"", "", "3g"},           // neither
		{"Torrent", "", "3g"},    // unknown app
		{"", "user99", "3g"},     // unknown user
		{"", "user1", "5g"},      // unknown cohort
	}
	for _, c := range cases {
		if _, err := generate(c.app, c.user, c.cohort, 1, time.Hour, false); err == nil {
			t.Errorf("generate(%q,%q,%q) accepted", c.app, c.user, c.cohort)
		}
	}
}
