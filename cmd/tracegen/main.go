// Command tracegen generates synthetic packet traces: one of the paper's
// seven application categories, or a multi-application user mix.
//
// Usage:
//
//	tracegen -app Email -seed 1 -duration 2h -o email.trc
//	tracegen -user user3 -cohort 3g -seed 1 -duration 24h -format bin -o user3.trc
//	tracegen -user user3 -diurnal -duration 720h -format stream -o user3.rrcstream
//	tracegen -list
//
// The text format is one "<seconds> <in|out> <bytes>" line per packet; the
// binary format is the compact rrcbin container; the stream format is the
// framed rrcstream codec, emitted packet-by-packet straight from the
// generator — memory stays O(1) no matter how long the trace, so month-
// scale captures are limited by disk, not RAM. All are read back by
// cmd/rrcsim.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		app      = flag.String("app", "", "application category (News, IM, MicroBlog, Game, Email, Social, Finance)")
		user     = flag.String("user", "", "user mix name (user1..user6)")
		cohort   = flag.String("cohort", "3g", "user cohort: 3g or lte")
		seed     = flag.Int64("seed", 1, "generator seed")
		duration = flag.Duration("duration", 2*time.Hour, "trace duration")
		diurnal  = flag.Bool("diurnal", false, "apply a day/night activity mask (for multi-day traces)")
		format   = flag.String("format", "text", "output format: text, bin, pcap or stream")
		out      = flag.String("o", "-", "output file (- for stdout)")
		list     = flag.Bool("list", false, "list available apps and users")
	)
	flag.Parse()

	if *list {
		fmt.Println("applications:")
		for _, a := range workload.Apps() {
			fmt.Printf("  %s\n", a.Name())
		}
		fmt.Println("users (3g):")
		for _, u := range workload.Verizon3GUsers() {
			fmt.Printf("  %s\n", u)
		}
		fmt.Println("users (lte):")
		for _, u := range workload.VerizonLTEUsers() {
			fmt.Printf("  %s\n", u)
		}
		return
	}

	src, err := sourceFor(*app, *user, *cohort, *seed, *duration, *diurnal)
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}

	n, span, err := write(w, *format, src)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d packets spanning %v\n", n, span)
}

// write renders the source in the chosen format. The stream format pipes
// packets straight from the generator in O(1) memory; the slice formats
// materialize first (their encodings need the whole trace).
func write(w io.Writer, format string, src trace.Source) (n int, span time.Duration, err error) {
	if format == "stream" {
		sw, err := trace.NewStreamWriter(w)
		if err != nil {
			return 0, 0, err
		}
		n, span, err = trace.CopySource(sw, src)
		if err != nil {
			return n, span, err
		}
		return n, span, sw.Flush()
	}

	tr, err := trace.Collect(src)
	if err != nil {
		return 0, 0, err
	}
	switch format {
	case "text":
		err = trace.WriteText(w, tr)
	case "bin":
		err = trace.WriteBinary(w, tr)
	case "pcap":
		err = trace.WritePcap(w, tr)
	default:
		err = fmt.Errorf("unknown format %q", format)
	}
	return len(tr), tr.Duration(), err
}

// sourceFor resolves the generator selection to a lazy packet source.
func sourceFor(app, user, cohort string, seed int64, d time.Duration, diurnal bool) (trace.Source, error) {
	switch {
	case app != "" && user != "":
		return nil, fmt.Errorf("specify -app or -user, not both")
	case app != "":
		m, ok := workload.AppByName(app)
		if !ok {
			return nil, fmt.Errorf("unknown app %q (try -list)", app)
		}
		if diurnal {
			m = workload.Diurnal{Model: m, WakeHour: 8, SleepHour: 23, NightFraction: 0.15, JitterMinutes: 45}
		}
		return workload.Stream(m, seed, d), nil
	case user != "":
		var users []workload.User
		switch cohort {
		case "3g":
			users = workload.Verizon3GUsers()
		case "lte":
			users = workload.VerizonLTEUsers()
		default:
			return nil, fmt.Errorf("unknown cohort %q (want 3g or lte)", cohort)
		}
		u, ok := workload.UserByName(users, user)
		if !ok {
			return nil, fmt.Errorf("unknown user %q in cohort %s (try -list)", user, cohort)
		}
		if diurnal {
			u = workload.DayUser(u)
		}
		return u.Stream(seed, d), nil
	default:
		return nil, fmt.Errorf("specify -app or -user (try -list)")
	}
}

// generate materializes sourceFor's stream (kept for callers and tests
// that want the slice form).
func generate(app, user, cohort string, seed int64, d time.Duration, diurnal bool) (trace.Trace, error) {
	src, err := sourceFor(app, user, cohort, seed, d, diurnal)
	if err != nil {
		return nil, err
	}
	return trace.Collect(src)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
