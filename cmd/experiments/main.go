// Command experiments regenerates the paper's tables and figures from the
// synthetic workload substrate.
//
// Usage:
//
//	experiments -list
//	experiments -run fig9
//	experiments -run all -seed 3 -user-duration 8h
//	experiments -run fleet -users 1000 -parallel 0 -shards 64
//	experiments -run sweep -users 100    # dormancy-tail grid via policy specs
//
// Output is text: tables whose rows correspond to the bars/points of the
// paper's figures. EXPERIMENTS.md records a reference run next to the
// paper's numbers.
//
// Every experiment fans its replays across the fleet runtime; -parallel
// bounds the worker count (results are identical for any value), -users
// sizes the fleet experiment's cohort, and -shards fixes the aggregate
// partitioning.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		run      = flag.String("run", "all", "experiment id (e.g. fig9) or 'all'")
		list     = flag.Bool("list", false, "list experiment ids")
		seed     = flag.Int64("seed", 1, "workload seed")
		appDur   = flag.Duration("app-duration", 2*time.Hour, "per-application trace length")
		userDur  = flag.Duration("user-duration", 4*time.Hour, "per-user trace length")
		users    = flag.Int("users", 0, "cohort size of the fleet experiment (0 = default 24; try 1000+)")
		parallel = flag.Int("parallel", 0, "fleet replay workers (0 = all cores, 1 = serial; never changes results)")
		shards   = flag.Int("shards", 0, "fleet aggregate shards (0 = fixed default; changes only float grouping)")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-6s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := experiments.Config{
		Seed: *seed, AppDuration: *appDur, UserDuration: *userDur,
		Users: *users, Workers: *parallel, Shards: *shards,
	}

	var todo []experiments.Experiment
	if *run == "all" {
		todo = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown id %q (use -list)\n", id)
				os.Exit(1)
			}
			todo = append(todo, e)
		}
	}

	for _, e := range todo {
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		out, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
}
