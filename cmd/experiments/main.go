// Command experiments regenerates the paper's tables and figures from the
// synthetic workload substrate.
//
// Usage:
//
//	experiments -list
//	experiments -run fig9
//	experiments -run all -seed 3 -user-duration 8h
//
// Output is text: tables whose rows correspond to the bars/points of the
// paper's figures. EXPERIMENTS.md records a reference run next to the
// paper's numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		run     = flag.String("run", "all", "experiment id (e.g. fig9) or 'all'")
		list    = flag.Bool("list", false, "list experiment ids")
		seed    = flag.Int64("seed", 1, "workload seed")
		appDur  = flag.Duration("app-duration", 2*time.Hour, "per-application trace length")
		userDur = flag.Duration("user-duration", 4*time.Hour, "per-user trace length")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-6s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := experiments.Config{Seed: *seed, AppDuration: *appDur, UserDuration: *userDur}

	var todo []experiments.Experiment
	if *run == "all" {
		todo = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown id %q (use -list)\n", id)
				os.Exit(1)
			}
			todo = append(todo, e)
		}
	}

	for _, e := range todo {
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		out, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
}
