package main

import (
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestEveryFlagDocumentedInREADME is the flag-documentation drift guard:
// every flag rrcsimd registers must be mentioned (as `-name`) in the
// repository README's daemon docs. registerFlags declares the daemon's
// flags in one place precisely so this test enumerates the real set — a
// new flag that ships without README coverage fails here, not in review.
func TestEveryFlagDocumentedInREADME(t *testing.T) {
	readme, err := os.ReadFile(filepath.Join("..", "..", "README.md"))
	if err != nil {
		t.Fatal(err)
	}
	doc := string(readme)

	fs := flag.NewFlagSet("rrcsimd", flag.ContinueOnError)
	registerFlags(fs)
	var missing []string
	fs.VisitAll(func(f *flag.Flag) {
		if !strings.Contains(doc, "-"+f.Name) {
			missing = append(missing, f.Name)
		}
	})
	sort.Strings(missing)
	if len(missing) > 0 {
		t.Fatalf("flags undocumented in README.md: -%s",
			strings.Join(missing, ", -"))
	}
}

// TestFlagStructCoversFlagSet pins registerFlags as the single source of
// truth: the number of registered flags must match the daemonFlags struct
// so a flag declared elsewhere (and so invisible to the drift guard
// above) fails loudly.
func TestFlagStructCoversFlagSet(t *testing.T) {
	fs := flag.NewFlagSet("rrcsimd", flag.ContinueOnError)
	registerFlags(fs)
	n := 0
	fs.VisitAll(func(*flag.Flag) { n++ })
	const fields = 12 // fields of daemonFlags
	if n != fields {
		t.Fatalf("registerFlags declared %d flags, daemonFlags has %d fields — keep them in one place",
			n, fields)
	}
}
