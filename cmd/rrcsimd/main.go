// Command rrcsimd is the long-running simulation service: an HTTP daemon
// that accepts replay jobs — single schemes, scheme sweeps, or whole
// scheme × profile × cohort grids — runs them asynchronously on the
// sharded fleet runtime, streams merged partial aggregates while they
// run, and serves finished summaries as JSON/CSV/text. Identical
// submissions (matched by the deterministic v4 job fingerprint over
// canonical axis encodings) are served from an LRU result cache with
// byte-identical responses, and overlapping grids reuse prior work
// through a cell-level cache.
//
// Usage:
//
//	rrcsimd -addr :8080 -parallel 0 -queue-depth 32 -cache-size 128
//	rrcsimd -cell-parallel 1                # strictly sequential cells
//	                                 # (default 0 schedules independent grid
//	                                 # cells concurrently under one worker
//	                                 # budget; results are byte-identical
//	                                 # at any setting)
//	rrcsimd -profile "att-hspa+"     # default profile for flat payloads
//	rrcsimd -pprof localhost:6060    # profiling endpoints on a side listener
//	rrcsimd -store-dir /var/lib/rrcsim/cells -store-max-bytes 1073741824
//	                                 # durable cell store: finished grid
//	                                 # cells persist across restarts (crash
//	                                 # included) and resubmitted grids
//	                                 # replay only never-computed cells
//	rrcsimd -trace-cache-bytes 67108864   # cohort trace cache budget:
//	                                 # generated traffic is memoized as
//	                                 # encoded slabs, so a grid synthesizes
//	                                 # each user's trace once, not once per
//	                                 # replay (<= 0 disables; results are
//	                                 # byte-identical either way)
//
// Then, from any HTTP client (the API is versioned under /v1; the
// pre-versioning paths without the prefix remain as aliases):
//
//	curl -s localhost:8080/v1/policies                 # discover policies + knobs
//	curl -s localhost:8080/v1/profiles                 # discover carrier profiles + knobs
//	curl -s localhost:8080/v1/workloads                # discover cohort families + knobs
//	curl -s localhost:8080/v1/jobs -d '{"users": 1000, "seed": 1, "duration": "4h"}'
//	curl -s localhost:8080/v1/jobs -d '{"seed": 1, "schemes": [
//	  {"policy": {"name": "makeidle"}},
//	  {"policy": {"name": "fixedtail", "params": {"wait": "2s"}}}],
//	  "profiles": [{"name": "verizon-3g"}, {"name": "verizon-lte", "params": {"t1": "5s"}}],
//	  "cohorts": [{"name": "study-3g", "params": {"users": 500}}]}'   # a 2x2x1 grid
//	curl -s localhost:8080/v1/jobs/job-000001/stream   # NDJSON progress
//	curl -s localhost:8080/v1/jobs/job-000001/result   # final JSON (per cell for grids)
//	curl -s localhost:8080/v1/jobs/job-000001/result?cell=2   # one cell, verbatim
//	curl -s localhost:8080/v1/cells/$FINGERPRINT       # same cell by content address
//	curl -s localhost:8080/v1/jobs/job-000001/result?format=csv
//	curl -s -X DELETE localhost:8080/v1/jobs/job-000001  # cancel
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: in-flight jobs are
// canceled at the fleet's next between-jobs checkpoint and the listener
// drains before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/jobs"
	"repro/internal/power"
	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil {
		fatal(err)
	}
}

// daemonFlags is every rrcsimd flag, declared in one place so the
// documentation drift test can enumerate them (each must be mentioned in
// the README) and run() stays readable.
type daemonFlags struct {
	addr       *string
	parallel   *int
	queueDepth *int
	cacheSize  *int
	cellCache  *int
	runners    *int
	cellPar    *int
	profile    *string
	pprofAddr  *string
	storeDir   *string
	storeMax   *int64
	traceCache *int64
}

// registerFlags declares the daemon's flags on fs.
func registerFlags(fs *flag.FlagSet) *daemonFlags {
	return &daemonFlags{
		addr:       fs.String("addr", ":8080", "listen address"),
		parallel:   fs.Int("parallel", 0, "fleet workers per job (0 = all cores; never changes results)"),
		queueDepth: fs.Int("queue-depth", 32, "max queued jobs before submissions get 503"),
		cacheSize:  fs.Int("cache-size", 128, "fingerprint result cache entries (LRU; negative disables)"),
		cellCache:  fs.Int("cell-cache-size", 1024, "grid cell cache entries (LRU; negative disables)"),
		runners:    fs.Int("runners", 1, "jobs executing concurrently (each parallelizes internally)"),
		cellPar:    fs.Int("cell-parallel", 0, "grid cells in flight per job (0 = up to the worker budget, 1 = sequential; never changes results)"),
		profile:    fs.String("profile", "", "default carrier profile for legacy flat payloads that name none (see GET /v1/profiles)"),
		pprofAddr:  fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty disables)"),
		storeDir:   fs.String("store-dir", "", "directory for the durable cell store (empty disables; created if missing)"),
		storeMax:   fs.Int64("store-max-bytes", 0, "cell store payload budget in bytes (LRU eviction; 0 = unbounded)"),
		traceCache: fs.Int64("trace-cache-bytes", 32<<20, "cohort trace cache budget in bytes of encoded slab (LRU; memoizes generated traffic across grid cells; <= 0 disables; never changes results)"),
	}
}

// run is the daemon body, factored out of main so the smoke test can
// drive it on an ephemeral port: parse args, serve until ctx cancels (the
// signal context in production), then drain the listener and close the
// manager. When ready is non-nil it receives the bound listen address
// once the daemon is accepting connections.
func run(ctx context.Context, args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("rrcsimd", flag.ContinueOnError)
	f := registerFlags(fs)
	var (
		addr       = f.addr
		parallel   = f.parallel
		queueDepth = f.queueDepth
		cacheSize  = f.cacheSize
		cellCache  = f.cellCache
		runners    = f.runners
		cellPar    = f.cellPar
		profile    = f.profile
		pprofAddr  = f.pprofAddr
		storeDir   = f.storeDir
		storeMax   = f.storeMax
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// The flag's disabled spelling is any non-positive budget; the
	// Config's zero value means "default", so disabled maps to -1.
	traceCacheBytes := *f.traceCache
	if traceCacheBytes <= 0 {
		traceCacheBytes = -1
	}
	// A misconfigured default profile must fail at boot, not surface as a
	// client-attributable 400 on every legacy submission.
	if *profile != "" {
		if _, ok := power.ByName(*profile); !ok {
			return fmt.Errorf("unknown -profile %q\nvalid profiles:\n%s",
				*profile, power.Default().Usage())
		}
	}

	// The store opens before the manager and closes after it: the manager
	// writes cells until its runners drain. Open recovers from whatever a
	// previous life left behind (partial temp files, a torn index tail),
	// so a SIGKILL'd daemon restarts with every fully-written cell intact.
	var cellStore *store.Store
	if *storeDir != "" {
		var err error
		cellStore, err = store.Open(store.Config{Dir: *storeDir, MaxBytes: *storeMax})
		if err != nil {
			return fmt.Errorf("cell store: %w", err)
		}
		defer cellStore.Close()
		fmt.Printf("rrcsimd: cell store %s (%d cells, %d bytes)\n",
			*storeDir, cellStore.Stats().Cells, cellStore.Stats().Bytes)
	}

	manager := jobs.NewManager(jobs.Config{
		QueueDepth:      *queueDepth,
		CacheSize:       *cacheSize,
		CellCacheSize:   *cellCache,
		Runners:         *runners,
		Workers:         *parallel,
		CellParallel:    *cellPar,
		DefaultProfile:  *profile,
		Store:           cellStore,
		TraceCacheBytes: traceCacheBytes,
	})
	defer manager.Close()

	// The profiling endpoints live on their own listener, never on the API
	// address: -addr is routinely exposed beyond localhost, and pprof leaks
	// heap contents and symbol names. The explicit mux carries only the
	// pprof handlers — importing net/http/pprof for its side effect would
	// register them on http.DefaultServeMux, which is a shared global this
	// daemon deliberately never serves.
	var pprofSrv *http.Server
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv = &http.Server{Handler: mux}
		go func() {
			fmt.Printf("rrcsimd: pprof on http://%s/debug/pprof/\n", pln.Addr())
			if err := pprofSrv.Serve(pln); !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "rrcsimd: pprof server:", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: server.New(manager)}

	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("rrcsimd: serving on %s (queue %d, cache %d, cell cache %d, runners %d)\n",
			ln.Addr(), *queueDepth, *cacheSize, *cellCache, *runners)
		errCh <- srv.Serve(ln)
	}()
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case <-ctx.Done():
		fmt.Println("rrcsimd: shutting down")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if pprofSrv != nil {
		// Best-effort: an in-flight CPU profile may outlive the timeout;
		// the API listener's drain is the one that matters.
		defer pprofSrv.Shutdown(shutdownCtx)
	}
	return srv.Shutdown(shutdownCtx)
}

func fatal(err error) {
	if errors.Is(err, http.ErrServerClosed) {
		return
	}
	fmt.Fprintln(os.Stderr, "rrcsimd:", err)
	os.Exit(1)
}
