// Command rrcsimd is the long-running simulation service: an HTTP daemon
// that accepts cohort replay jobs — single schemes or whole parameter
// sweeps — runs them asynchronously on the sharded fleet runtime, streams
// merged partial aggregates while they run, and serves finished summaries
// as JSON/CSV/text. Identical submissions (matched by the deterministic
// job fingerprint over canonical policy-spec encodings) are served from an
// LRU result cache with byte-identical responses.
//
// Usage:
//
//	rrcsimd -addr :8080 -parallel 0 -queue-depth 32 -cache-size 128
//
// Then, from any HTTP client (the API is versioned under /v1; the
// pre-versioning paths without the prefix remain as aliases):
//
//	curl -s localhost:8080/v1/policies                 # discover policies + knobs
//	curl -s localhost:8080/v1/jobs -d '{"users": 1000, "seed": 1, "duration": "4h"}'
//	curl -s localhost:8080/v1/jobs -d '{"users": 1000, "seed": 1, "schemes": [
//	  {"policy": {"name": "fixedtail", "params": {"wait": "2s"}}},
//	  {"policy": {"name": "fixedtail", "params": {"wait": "8s"}}},
//	  {"policy": {"name": "makeidle"}}]}'              # a 3-scheme sweep
//	curl -s localhost:8080/v1/jobs/job-000001/stream   # NDJSON progress
//	curl -s localhost:8080/v1/jobs/job-000001/result   # final JSON
//	curl -s localhost:8080/v1/jobs/job-000001/result?format=csv
//	curl -s -X DELETE localhost:8080/v1/jobs/job-000001  # cancel
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: in-flight jobs are
// canceled at the fleet's next between-jobs checkpoint and the listener
// drains before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/jobs"
	"repro/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		parallel   = flag.Int("parallel", 0, "fleet workers per job (0 = all cores; never changes results)")
		queueDepth = flag.Int("queue-depth", 32, "max queued jobs before submissions get 503")
		cacheSize  = flag.Int("cache-size", 128, "fingerprint result cache entries (LRU; negative disables)")
		runners    = flag.Int("runners", 1, "jobs executing concurrently (each parallelizes internally)")
	)
	flag.Parse()

	manager := jobs.NewManager(jobs.Config{
		QueueDepth: *queueDepth,
		CacheSize:  *cacheSize,
		Runners:    *runners,
		Workers:    *parallel,
	})
	srv := &http.Server{Addr: *addr, Handler: server.New(manager)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("rrcsimd: serving on %s (queue %d, cache %d, runners %d)\n",
			*addr, *queueDepth, *cacheSize, *runners)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		fmt.Println("rrcsimd: shutting down")
	case err := <-errCh:
		fatal(err)
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "rrcsimd: shutdown:", err)
	}
	manager.Close()
}

func fatal(err error) {
	if errors.Is(err, http.ErrServerClosed) {
		return
	}
	fmt.Fprintln(os.Stderr, "rrcsimd:", err)
	os.Exit(1)
}
