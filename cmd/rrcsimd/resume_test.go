package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildDaemon compiles the real rrcsimd binary once per test run — the
// SIGKILL test needs a separate process; killing a goroutine cannot
// prove crash durability.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "rrcsimd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// daemonProc is one rrcsimd process under test.
type daemonProc struct {
	cmd  *exec.Cmd
	base string
}

// startProc launches the binary and parses the bound address off its
// stdout banner.
func startProc(t *testing.T, bin string, args ...string) *daemonProc {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	addr := ""
	for sc.Scan() {
		if _, rest, ok := strings.Cut(sc.Text(), "serving on "); ok {
			addr, _, _ = strings.Cut(rest, " ")
			break
		}
	}
	if addr == "" {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("daemon never printed its listen address")
	}
	go io.Copy(io.Discard, stdout) // keep the pipe drained
	return &daemonProc{cmd: cmd, base: "http://" + addr}
}

// stop terminates the process gracefully (SIGTERM) and reaps it.
func (p *daemonProc) stop(t *testing.T) {
	t.Helper()
	p.cmd.Process.Signal(syscall.SIGTERM)
	if err := p.cmd.Wait(); err != nil {
		t.Fatalf("daemon exit: %v", err)
	}
}

// resumeGrid is the e2e grid: 12 cells with enough per-cell work that
// SIGKILL reliably lands mid-run (the kill loop waits for the second
// durable cell, so at least one cell survives and at least one is still
// owed).
const resumeGrid = `{"seed": 77, "shards": 2,
	"schemes": [
		{"policy": {"name": "fixedtail", "params": {"wait": "1s"}}},
		{"policy": {"name": "fixedtail", "params": {"wait": "2s"}}},
		{"policy": {"name": "fixedtail", "params": {"wait": "3s"}}},
		{"policy": {"name": "fixedtail", "params": {"wait": "4s"}}},
		{"policy": {"name": "fixedtail", "params": {"wait": "5s"}}},
		{"policy": {"name": "makeidle"}}],
	"profiles": [{"name": "verizon-3g"}, {"name": "verizon-lte"}],
	"cohorts": [{"name": "study-3g", "params": {"users": 30, "duration": "30m"}}]}`

const resumeGridCells = 12

func submitGrid(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(resumeGrid))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit returned %d: %s", resp.StatusCode, body)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	return st.ID
}

func waitJobDone(t *testing.T, base, id string) []byte {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		body, _ := get(t, base+"/v1/jobs/"+id)
		var st struct {
			State string `json:"state"`
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case "done":
			res, code := get(t, base+"/v1/jobs/"+id+"/result")
			if code != http.StatusOK {
				t.Fatalf("result returned %d", code)
			}
			return res
		case "failed", "canceled":
			t.Fatalf("job ended %s: %s", st.State, body)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// durableCells counts fully-committed cell records in the store dir.
func durableCells(t *testing.T, storeDir string) int {
	t.Helper()
	ents, err := os.ReadDir(filepath.Join(storeDir, "cells"))
	if err != nil {
		if os.IsNotExist(err) {
			return 0
		}
		t.Fatal(err)
	}
	n := 0
	for _, e := range ents {
		if len(e.Name()) == 64 {
			n++
		}
	}
	return n
}

// TestDaemonSIGKILLResume is the end-to-end crash-resume proof: a real
// rrcsimd process with a durable store is SIGKILL'd mid-grid (no
// shutdown hooks run), a fresh process over the same directory recovers
// the committed cells, and resubmitting the grid executes only the
// still-missing frontier — finishing with bytes identical to a daemon
// that was never interrupted.
func TestDaemonSIGKILLResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	bin := buildDaemon(t)
	storeDir := filepath.Join(t.TempDir(), "store")

	// Life 1: start computing the grid, then SIGKILL once at least two
	// cells are durable (and well before the grid can finish).
	p1 := startProc(t, bin, "-store-dir", storeDir)
	submitGrid(t, p1.base)
	killDeadline := time.Now().Add(60 * time.Second)
	for durableCells(t, storeDir) < 2 {
		if time.Now().After(killDeadline) {
			t.Fatal("no cells became durable before the kill deadline")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := p1.cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup runs
		t.Fatal(err)
	}
	p1.cmd.Wait()
	survived := durableCells(t, storeDir)
	if survived == 0 {
		t.Fatal("kill left no durable cells")
	}
	if survived >= resumeGridCells {
		t.Skipf("grid finished before SIGKILL landed (%d cells); nothing to resume", survived)
	}
	t.Logf("SIGKILL after %d/%d durable cells", survived, resumeGridCells)

	// Life 2: same store directory. Recovery must surface the committed
	// cells, and the resubmitted grid must execute only the frontier.
	p2 := startProc(t, bin, "-store-dir", storeDir)
	defer p2.stop(t)
	hb, _ := get(t, p2.base+"/healthz")
	var health struct {
		CellsExecuted uint64 `json:"cells_executed"`
		Store         struct {
			Cells uint64 `json:"cells"`
			Hits  uint64 `json:"hits"`
		} `json:"store"`
	}
	if err := json.Unmarshal(hb, &health); err != nil {
		t.Fatal(err)
	}
	if health.Store.Cells < uint64(survived) {
		t.Fatalf("restart recovered %d cells, want >= %d", health.Store.Cells, survived)
	}
	id := submitGrid(t, p2.base)
	resumed := waitJobDone(t, p2.base, id)
	hb, _ = get(t, p2.base+"/healthz")
	if err := json.Unmarshal(hb, &health); err != nil {
		t.Fatal(err)
	}
	if health.CellsExecuted > uint64(resumeGridCells-survived) {
		t.Fatalf("resumed run executed %d cells, want <= frontier %d",
			health.CellsExecuted, resumeGridCells-survived)
	}
	if health.Store.Hits < uint64(survived) {
		t.Fatalf("store hits = %d, want >= %d (survivors must be served from disk)",
			health.Store.Hits, survived)
	}

	// Reference: an uninterrupted daemon over an empty store computes the
	// same grid; the resumed result must be byte-identical.
	ref := startProc(t, bin, "-store-dir", filepath.Join(t.TempDir(), "ref-store"))
	defer ref.stop(t)
	refBytes := waitJobDone(t, ref.base, submitGrid(t, ref.base))
	if !bytes.Equal(resumed, refBytes) {
		t.Fatalf("resumed result differs from uninterrupted run:\n%.400s\nvs\n%.400s",
			resumed, refBytes)
	}

	// The cells are individually addressable on the resumed daemon.
	var grid struct {
		Cells []struct {
			Fingerprint string `json:"fingerprint"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(resumed, &grid); err != nil {
		t.Fatal(err)
	}
	if len(grid.Cells) != resumeGridCells {
		t.Fatalf("resumed grid has %d cells, want %d", len(grid.Cells), resumeGridCells)
	}
	if _, code := get(t, fmt.Sprintf("%s/v1/cells/%s", p2.base, grid.Cells[0].Fingerprint)); code != http.StatusOK {
		t.Fatalf("cell fingerprint lookup returned %d", code)
	}
}
