package main

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startDaemon boots run() on an ephemeral port and returns its base URL
// plus the channel run's error lands on.
func startDaemon(t *testing.T, ctx context.Context, args []string) (string, <-chan error) {
	t.Helper()
	ready := make(chan string, 1)
	errCh := make(chan error, 1)
	go func() { errCh <- run(ctx, args, ready) }()
	select {
	case addr := <-ready:
		return "http://" + addr, errCh
	case err := <-errCh:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	return "", nil
}

func get(t *testing.T, url string) ([]byte, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b, resp.StatusCode
}

// TestDaemonSmoke starts the daemon on an ephemeral port, hits /healthz
// and the /v1 discovery endpoints, runs one tiny job end to end, and
// verifies graceful shutdown when the context cancels.
func TestDaemonSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, errCh := startDaemon(t, ctx, []string{"-addr", "127.0.0.1:0", "-runners", "1"})

	hb, code := get(t, base+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz returned %d: %s", code, hb)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(hb, &health); err != nil || health.Status != "ok" {
		t.Fatalf("bad health payload %s (err %v)", hb, err)
	}
	for _, path := range []string{"/v1/policies", "/v1/profiles", "/v1/workloads"} {
		body, code := get(t, base+path)
		if code != http.StatusOK || !json.Valid(body) {
			t.Fatalf("%s returned %d (valid JSON %v)", path, code, json.Valid(body))
		}
	}

	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"users": 2, "seed": 9, "duration": "5m", "shards": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit returned %d", resp.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		body, _ := get(t, base+"/v1/jobs/"+st.ID)
		var got struct {
			State string `json:"state"`
		}
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		if got.State == "done" {
			break
		}
		if got.State == "failed" || got.State == "canceled" {
			t.Fatalf("job ended %s: %s", got.State, body)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", got.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down after context cancel")
	}
}

// TestDaemonSIGTERM verifies the production signal path: a SIGTERM
// delivered to the process cancels the daemon's NotifyContext and run
// returns cleanly.
func TestDaemonSIGTERM(t *testing.T) {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	base, errCh := startDaemon(t, ctx, []string{"-addr", "127.0.0.1:0"})
	if _, code := get(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz returned %d", code)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down on SIGTERM")
	}
	// The listener must be gone after shutdown.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("daemon still serving after SIGTERM shutdown")
	}
}

// TestDaemonPprofFlag: -pprof serves the profiling endpoints on its own
// listener, and the API listener never exposes them.
func TestDaemonPprofFlag(t *testing.T) {
	// Reserve a free port for the pprof listener. Closing it before the
	// daemon boots is a small race, but the port was free moments ago and
	// the test fails loudly if it was snatched.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pprofAddr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, errCh := startDaemon(t, ctx,
		[]string{"-addr", "127.0.0.1:0", "-pprof", pprofAddr})

	body, code := get(t, "http://"+pprofAddr+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index returned %d: %.120s", code, body)
	}
	if _, code := get(t, base+"/debug/pprof/"); code == http.StatusOK {
		t.Fatal("API listener serves pprof; it must stay on the side listener")
	}

	cancel()
	if err := <-errCh; err != nil {
		t.Fatalf("shutdown returned %v", err)
	}
}

// TestDaemonDefaultProfileFlag: -profile sets the default carrier for
// legacy flat payloads that name none.
func TestDaemonDefaultProfileFlag(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, errCh := startDaemon(t, ctx,
		[]string{"-addr", "127.0.0.1:0", "-profile", "att-hspa+"})
	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"users": 1, "seed": 3, "duration": "5m"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit returned %d: %s", resp.StatusCode, body)
	}
	var st struct {
		Spec struct {
			Profile string `json:"profile"`
		} `json:"spec"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Spec.Profile != "att-hspa+" {
		t.Fatalf("default profile not applied: %q", st.Spec.Profile)
	}
	cancel()
	if err := <-errCh; err != nil {
		t.Fatalf("shutdown returned %v", err)
	}
}
