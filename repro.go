// Package repro is a reproduction of "Traffic-Aware Techniques to Reduce
// 3G/LTE Wireless Energy Consumption" (Deng & Balakrishnan, CoNEXT 2012):
// a library for simulating cellular RRC energy behaviour and for running
// the paper's two traffic-aware control algorithms, MakeIdle and
// MakeActive, against packet traces.
//
// This root package is a thin facade over the implementation packages in
// internal/, re-exporting the user-facing API so downstream code needs a
// single import:
//
//	tr := repro.GenerateApp(repro.Email(), 1, 2*time.Hour)
//	mi, _ := repro.NewMakeIdle(repro.Verizon3G())
//	res, _ := repro.Simulate(tr, repro.Verizon3G(), mi, repro.NewLearnedDelay(), nil)
//	fmt.Printf("energy: %.1f J, switches: %d\n", res.TotalJ(), res.Promotions)
//
// The layering underneath (one package per subsystem, documented in
// DESIGN.md):
//
//	internal/trace      packet traces, bursts, codecs
//	internal/power      carrier power/timer profiles (Tables 1-2)
//	internal/energy     E(t), tail energy, t_threshold (§4.1)
//	internal/rrc        the RRC state machine (Fig. 2)
//	internal/dist       sliding-window inter-arrival distributions
//	internal/experts    fixed-share + Learn-alpha online learning
//	internal/policy     MakeIdle, MakeActive and the baselines
//	internal/core       the on-device control module (Fig. 4)
//	internal/sim        the trace-driven simulator (§6)
//	internal/metrics    savings, switch ratios, FP/FN, delay stats
//	internal/workload   synthetic app/user workload generators
//	internal/experiments  one driver per paper figure/table
package repro

import (
	"time"

	"repro/internal/energy"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Core data types.
type (
	// Trace is a time-ordered packet trace.
	Trace = trace.Trace
	// Packet is one packet: offset, direction, size.
	Packet = trace.Packet
	// Direction is packet direction (In/Out).
	Direction = trace.Direction
	// Profile describes a carrier/device power model (Table 2 row).
	Profile = power.Profile
	// Result is a simulation outcome.
	Result = sim.Result
	// Options tunes a simulation run.
	Options = sim.Options
	// DemotePolicy decides Active->Idle transitions (MakeIdle side).
	DemotePolicy = policy.DemotePolicy
	// ActivePolicy decides Idle->Active batching (MakeActive side).
	ActivePolicy = policy.ActivePolicy
	// AppModel generates one application category's traffic.
	AppModel = workload.AppModel
	// User is a named mix of applications.
	User = workload.User
	// Confusion holds false/missed switch counts (§6.3).
	Confusion = metrics.Confusion
	// DelayStats summarises batching delays (§6.4).
	DelayStats = metrics.DelayStats
)

// Packet directions.
const (
	Out = trace.Out
	In  = trace.In
)

// Carrier profiles measured in the paper (Table 2).
func TMobile3G() Profile   { return power.TMobile3G }
func ATTHSPAPlus() Profile { return power.ATTHSPAPlus }
func Verizon3G() Profile   { return power.Verizon3G }
func VerizonLTE() Profile  { return power.VerizonLTE }

// Carriers returns all four Table 2 profiles.
func Carriers() []Profile { return power.Carriers() }

// Threshold computes t_threshold for a profile (§4.1): the gap length
// beyond which fast dormancy beats riding the inactivity timers.
func Threshold(p Profile) time.Duration { return energy.Threshold(&p) }

// NewMakeIdle builds the paper's MakeIdle policy (§4) for a profile.
func NewMakeIdle(p Profile, opts ...policy.MakeIdleOption) (*policy.MakeIdle, error) {
	return policy.NewMakeIdle(p, opts...)
}

// NewLearnedDelay builds the learning MakeActive policy (§5.2).
func NewLearnedDelay(opts ...policy.LearnedDelayOption) *policy.LearnedDelay {
	return policy.NewLearnedDelay(opts...)
}

// NewFixedDelay builds the fixed-bound MakeActive policy (§5.1), deriving
// T_fix from the trace's burst structure.
func NewFixedDelay(tr Trace, p Profile, burstGap time.Duration) *policy.FixedDelay {
	return policy.NewFixedDelay(tr, &p, burstGap)
}

// StatusQuo returns the deployed timer-only behaviour.
func StatusQuo() DemotePolicy { return policy.StatusQuo{} }

// NewOracle returns the clairvoyant upper-bound policy for a profile.
func NewOracle(p Profile) DemotePolicy { return policy.NewOracle(energy.Threshold(&p)) }

// NewFourPointFive returns the 4.5-second-tail baseline.
func NewFourPointFive() DemotePolicy { return policy.NewFourPointFive() }

// NewPercentileIAT returns the 95%-IAT-style baseline for a trace.
func NewPercentileIAT(tr Trace, q float64) DemotePolicy { return policy.NewPercentileIAT(tr, q) }

// Simulate replays a trace under the policies and returns the accounting.
func Simulate(tr Trace, p Profile, demote DemotePolicy, active ActivePolicy, opts *Options) (*Result, error) {
	return sim.Run(tr, p, demote, active, opts)
}

// SavingsPercent compares a candidate run against a status-quo run.
func SavingsPercent(statusQuo, candidate *Result) float64 {
	return metrics.SavingsPercent(statusQuo, candidate)
}

// SwitchRatio returns candidate promotions / status-quo promotions.
func SwitchRatio(statusQuo, candidate *Result) float64 {
	return metrics.SwitchRatio(statusQuo, candidate)
}

// Delays summarises a batching-delay sample.
func Delays(sample []time.Duration) DelayStats { return metrics.Delays(sample) }

// The seven §6.1 application categories.
func News() AppModel      { return workload.News() }
func IM() AppModel        { return workload.IM() }
func MicroBlog() AppModel { return workload.MicroBlog() }
func Game() AppModel      { return workload.Game() }
func Email() AppModel     { return workload.Email() }
func Social() AppModel    { return workload.Social() }
func Finance() AppModel   { return workload.Finance() }

// Apps returns all seven categories.
func Apps() []AppModel { return workload.Apps() }

// GenerateApp produces a deterministic synthetic trace for one category.
func GenerateApp(m AppModel, seed int64, duration time.Duration) Trace {
	return workload.Generate(m, seed, duration)
}

// Verizon3GUsers and VerizonLTEUsers return the synthetic study cohorts.
func Verizon3GUsers() []User  { return workload.Verizon3GUsers() }
func VerizonLTEUsers() []User { return workload.VerizonLTEUsers() }

// Fleet runtime: sharded parallel multi-user replay with mergeable
// aggregates (same seed + any worker count = identical numbers).
type (
	// FleetJob is one replay job (trace × profile × policy pair).
	FleetJob = fleet.Job
	// FleetOptions tunes worker and shard counts.
	FleetOptions = fleet.Options
	// FleetCohort describes a synthetic multi-user population.
	FleetCohort = fleet.Cohort
	// FleetScheme couples a label with policy factories.
	FleetScheme = fleet.Scheme
	// FleetSummary is the mergeable per-scheme aggregate.
	FleetSummary = fleet.Summary
	// Stream is a mergeable count/mean/variance accumulator.
	Stream = metrics.Stream
	// Histogram is a mergeable fixed-bin histogram.
	Histogram = metrics.Histogram
)

// RunFleet replays jobs across the sharded worker pool and reduces them
// into the standard streaming summary.
func RunFleet(jobs []FleetJob, opts FleetOptions) (*FleetSummary, error) {
	return fleet.RunSummary(jobs, opts, fleet.SummaryConfig{})
}

// NewEngine returns a reusable allocation-light replay engine (one per
// goroutine) for callers replaying many traces.
func NewEngine() *sim.Engine { return sim.NewEngine() }
